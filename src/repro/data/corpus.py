"""``TweetCorpus``: the container every pipeline stage consumes.

A corpus holds tweets and user profiles, provides stable integer index
mappings (tweet position, user position) for matrix construction, temporal
window slicing for the online framework, and labeled-subset access for
evaluation.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.data.tweet import Tweet, UserProfile


@dataclass
class TweetCorpus:
    """An ordered collection of tweets plus the users who wrote them."""

    tweets: list[Tweet] = field(default_factory=list)
    users: dict[int, UserProfile] = field(default_factory=dict)
    name: str = "corpus"

    def __post_init__(self) -> None:
        self._reindex()

    def _reindex(self) -> None:
        missing = {t.user_id for t in self.tweets} - set(self.users)
        if missing:
            raise ValueError(
                f"tweets reference unknown users: {sorted(missing)[:5]}"
            )
        self._tweet_index = {t.tweet_id: i for i, t in enumerate(self.tweets)}
        if len(self._tweet_index) != len(self.tweets):
            raise ValueError("duplicate tweet ids in corpus")
        self._user_ids = sorted(self.users)
        self._user_index = {uid: i for i, uid in enumerate(self._user_ids)}
        self._author_rows: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Sizes and index mappings
    # ------------------------------------------------------------------ #

    @property
    def num_tweets(self) -> int:
        return len(self.tweets)

    @property
    def num_users(self) -> int:
        return len(self._user_ids)

    @property
    def user_ids(self) -> list[int]:
        """User ids in matrix-row order (a copy)."""
        return list(self._user_ids)

    def tweet_position(self, tweet_id: int) -> int:
        """Matrix-row index of ``tweet_id``."""
        return self._tweet_index[tweet_id]

    def user_position(self, user_id: int) -> int:
        """Matrix-row index of ``user_id``."""
        return self._user_index[user_id]

    @property
    def author_rows(self) -> np.ndarray:
        """Each tweet's author row index, one int64 entry per tweet.

        The vectorized form of ``user_position(t.user_id) for t in
        tweets`` that graph assembly and shard extraction need; cached
        (and marked read-only) because at realistic scale the per-tweet
        dict-lookup loop is measurable where the array is not.
        """
        if self._author_rows is None:
            rows = np.fromiter(
                (self._user_index[t.user_id] for t in self.tweets),
                dtype=np.int64,
                count=len(self.tweets),
            )
            rows.flags.writeable = False
            self._author_rows = rows
        return self._author_rows

    def __len__(self) -> int:
        return len(self.tweets)

    def __iter__(self) -> Iterator[Tweet]:
        return iter(self.tweets)

    # ------------------------------------------------------------------ #
    # Temporal structure
    # ------------------------------------------------------------------ #

    @property
    def day_range(self) -> tuple[int, int]:
        """``(first_day, last_day)`` inclusive; ``(0, -1)`` when empty."""
        if not self.tweets:
            return (0, -1)
        days = [t.day for t in self.tweets]
        return (min(days), max(days))

    def window(self, start_day: int, end_day: int, name: str | None = None) -> "TweetCorpus":
        """Sub-corpus of tweets with ``start_day <= day <= end_day``.

        Users are restricted to those active (posting or being retweeted)
        in the window, matching the online framework's per-snapshot data
        matrices ``Xp(t), Xu(t), Xr(t)``.
        """
        selected = [t for t in self.tweets if start_day <= t.day <= end_day]
        active_users = {t.user_id for t in selected}
        authors_of = {t.tweet_id: t.user_id for t in self.tweets}
        for tweet in selected:
            if tweet.retweet_of is not None and tweet.retweet_of in authors_of:
                active_users.add(authors_of[tweet.retweet_of])
        users = {uid: self.users[uid] for uid in active_users}
        return TweetCorpus(
            tweets=selected,
            users=users,
            name=name or f"{self.name}[{start_day}:{end_day}]",
        )

    def tweets_by_day(self) -> dict[int, list[Tweet]]:
        """Group tweets by day (sorted day keys)."""
        grouped: dict[int, list[Tweet]] = {}
        for tweet in self.tweets:
            grouped.setdefault(tweet.day, []).append(tweet)
        return dict(sorted(grouped.items()))

    # ------------------------------------------------------------------ #
    # Labels
    # ------------------------------------------------------------------ #

    def tweet_labels(self) -> np.ndarray:
        """Array of tweet sentiment ids; ``-1`` marks unlabeled tweets."""
        return np.array(
            [
                int(t.sentiment) if t.sentiment is not None else -1
                for t in self.tweets
            ],
            dtype=np.int64,
        )

    def user_labels(self, day: int | None = None) -> np.ndarray:
        """Array of user sentiment ids in user-row order; ``-1`` unlabeled.

        ``day`` evaluates evolving users at a point in time; the default
        uses the end of the corpus window (the paper evaluates user labels
        per snapshot in the online experiments).
        """
        if day is None:
            day = self.day_range[1]
        labels = np.empty(self.num_users, dtype=np.int64)
        for row, uid in enumerate(self._user_ids):
            label = self.users[uid].label_at(day)
            labels[row] = int(label) if label is not None else -1
        return labels

    def labeled_tweet_indices(self) -> np.ndarray:
        """Positions of tweets that carry a ground-truth label."""
        labels = self.tweet_labels()
        return np.flatnonzero(labels >= 0)

    def labeled_user_indices(self, day: int | None = None) -> np.ndarray:
        """Positions of users that carry a ground-truth label."""
        labels = self.user_labels(day)
        return np.flatnonzero(labels >= 0)

    # ------------------------------------------------------------------ #
    # Statistics / reporting
    # ------------------------------------------------------------------ #

    def tweet_label_counts(self, include_retweets: bool = True) -> Counter[str]:
        """Counter of tweet labels by short name plus ``unlabeled``.

        ``include_retweets=False`` counts original tweets only, which is
        what the paper's Table 3 statistics describe (a retweet row in
        this corpus is a separate entry carrying its source's label).
        """
        counts: Counter[str] = Counter()
        for tweet in self.tweets:
            if not include_retweets and tweet.is_retweet:
                continue
            if tweet.sentiment is None:
                counts["unlabeled"] += 1
            else:
                counts[tweet.sentiment.short_name] += 1
        return counts

    def user_label_counts(self, day: int | None = None) -> Counter[str]:
        """Counter of user labels by short name plus ``unlabeled``."""
        if day is None:
            day = self.day_range[1]
        counts: Counter[str] = Counter()
        for uid in self._user_ids:
            label = self.users[uid].label_at(day)
            if label is None:
                counts["unlabeled"] += 1
            else:
                counts[label.short_name] += 1
        return counts

    def retweet_edges(self) -> list[tuple[int, int]]:
        """``(retweeting_user_id, source_tweet_id)`` pairs within corpus."""
        edges = []
        for tweet in self.tweets:
            if tweet.retweet_of is not None and tweet.retweet_of in self._tweet_index:
                edges.append((tweet.user_id, tweet.retweet_of))
        return edges

    def texts(self) -> list[str]:
        """All tweet texts in matrix-row order."""
        return [t.text for t in self.tweets]

    def profiles_for(self, tweets: Iterable[Tweet]) -> list[UserProfile]:
        """Profiles of the authors of ``tweets``, in user-id order.

        The companion of streaming ingestion: feeding these alongside a
        tweet delta keeps ground-truth labels attached to the engine's
        per-snapshot corpora (otherwise unknown authors are synthesized
        as unlabeled and user-level evaluation silently degrades).
        """
        return [self.users[uid] for uid in sorted({t.user_id for t in tweets})]

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_tweets(
        cls,
        tweets: Iterable[Tweet],
        users: Iterable[UserProfile] | None = None,
        name: str = "corpus",
    ) -> "TweetCorpus":
        """Build a corpus, synthesizing missing user profiles as unlabeled."""
        tweet_list = list(tweets)
        profiles = {u.user_id: u for u in (users or [])}
        for tweet in tweet_list:
            if tweet.user_id not in profiles:
                profiles[tweet.user_id] = UserProfile(
                    user_id=tweet.user_id, base_stance=None, labeled=False
                )
        return cls(tweets=tweet_list, users=profiles, name=name)

    def merged_with(self, other: "TweetCorpus") -> "TweetCorpus":
        """Union of two corpora (tweet ids must not collide)."""
        users = {**self.users, **other.users}
        return TweetCorpus(
            tweets=[*self.tweets, *other.tweets],
            users=users,
            name=f"{self.name}+{other.name}",
        )


def concatenate_corpora(corpora: Sequence[TweetCorpus], name: str) -> TweetCorpus:
    """Concatenate several disjoint corpora into one."""
    merged_tweets: list[Tweet] = []
    merged_users: dict[int, UserProfile] = {}
    for corpus in corpora:
        merged_tweets.extend(corpus.tweets)
        merged_users.update(corpus.users)
    return TweetCorpus(tweets=merged_tweets, users=merged_users, name=name)
