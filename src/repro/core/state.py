"""Factor state for the tri-clustering objective.

One :class:`FactorSet` bundles the five factor matrices of Eq. (1):

- ``sf (l×k)`` feature-cluster memberships,
- ``sp (n×k)`` tweet-cluster memberships,
- ``su (m×k)`` user-cluster memberships,
- ``hp (k×k)`` feature-to-tweet-class association,
- ``hu (k×k)`` feature-to-user-class association.

All matrices are dense floating-point (``float64`` by default; the
opt-in ``dtype="float32"`` solver mode carries ``float32`` factors end
to end, including through checkpoints) and element-wise non-negative.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.matrices import hard_assignments, is_nonnegative, row_normalize


@dataclass
class FactorSet:
    """The five non-negative factors of the tri-clustering model."""

    sf: np.ndarray
    sp: np.ndarray
    su: np.ndarray
    hp: np.ndarray
    hu: np.ndarray

    def __post_init__(self) -> None:
        k = self.sf.shape[1]
        for name in ("sf", "sp", "su"):
            matrix = getattr(self, name)
            if matrix.ndim != 2 or matrix.shape[1] != k:
                raise ValueError(
                    f"{name} must have {k} columns, got shape {matrix.shape}"
                )
        for name in ("hp", "hu"):
            matrix = getattr(self, name)
            if matrix.shape != (k, k):
                raise ValueError(
                    f"{name} must be {k}x{k}, got shape {matrix.shape}"
                )
        for name in ("sf", "sp", "su", "hp", "hu"):
            if not is_nonnegative(getattr(self, name), tolerance=1e-12):
                raise ValueError(f"{name} must be non-negative")

    # ------------------------------------------------------------------ #
    # Shapes
    # ------------------------------------------------------------------ #

    @property
    def num_features(self) -> int:
        return self.sf.shape[0]

    @property
    def num_tweets(self) -> int:
        return self.sp.shape[0]

    @property
    def num_users(self) -> int:
        return self.su.shape[0]

    @property
    def num_classes(self) -> int:
        return self.sf.shape[1]

    @property
    def dtype(self) -> np.dtype:
        """The floating-point dtype the factors are carried in."""
        return self.sf.dtype

    # ------------------------------------------------------------------ #
    # Readouts
    # ------------------------------------------------------------------ #

    def tweet_clusters(self) -> np.ndarray:
        """Hard tweet cluster ids (argmax over ``sp`` rows)."""
        return hard_assignments(self.sp)

    def user_clusters(self) -> np.ndarray:
        """Hard user cluster ids (argmax over ``su`` rows)."""
        return hard_assignments(self.su)

    def feature_clusters(self) -> np.ndarray:
        """Hard feature cluster ids (argmax over ``sf`` rows)."""
        return hard_assignments(self.sf)

    def tweet_memberships(self) -> np.ndarray:
        """Row-normalized soft tweet memberships (rows sum to 1)."""
        return row_normalize(self.sp)

    def user_memberships(self) -> np.ndarray:
        """Row-normalized soft user memberships (rows sum to 1)."""
        return row_normalize(self.su)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def copy(self) -> "FactorSet":
        return FactorSet(
            sf=self.sf.copy(),
            sp=self.sp.copy(),
            su=self.su.copy(),
            hp=self.hp.copy(),
            hu=self.hu.copy(),
        )

    def astype(self, dtype: np.dtype) -> "FactorSet":
        """Factors cast to ``dtype`` (a no-op returning ``self`` if equal)."""
        if self.sf.dtype == dtype:
            return self
        return FactorSet(
            sf=self.sf.astype(dtype),
            sp=self.sp.astype(dtype),
            su=self.su.astype(dtype),
            hp=self.hp.astype(dtype),
            hu=self.hu.astype(dtype),
        )
