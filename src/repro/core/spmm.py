"""Pluggable sparse·dense product engines for the sweep hot path.

PR 6 made the element-wise sweep tails hardware-fast, which left the
sweeps Amdahl-limited by scipy's sparse·dense products — every
multiplicative update is dominated by an ``X @ H``-shaped CSR×dense
product (``O(nnz·k)``), and scipy evaluates it with one scalar loop on
one core.  This module makes that layer pluggable, mirroring the
:mod:`repro.core.kernels` registry pattern:

* :class:`ScipySpmmEngine` — the always-available reference: exactly
  the ``np.asarray(x @ dense)`` expression the call sites historically
  inlined, so the default path is unchanged to the bit and to the
  nanosecond.
* :class:`ThreadedSpmmEngine` — row-block parallel CSR×dense on a
  :class:`~concurrent.futures.ThreadPoolExecutor`.  scipy's sparsetools
  release the GIL, so contiguous row blocks of the same product overlap
  on real cores with zero copies (the blocks are index-slice *views* of
  the parent CSR arrays).
* :class:`NumbaSpmmEngine` — an ``@njit(parallel=True, cache=True)``
  ``prange`` row loop, compiled lazily when :mod:`numba` is importable.
  One pass, no Python dispatch per block, and ``cache=True`` so forked
  workers reuse the on-disk compilation instead of re-JITting.

**Why every engine is bit-identical in float64.**  scipy's
``csr_matvecs`` accumulates each output row in storage (column-index)
order: ``out[i, j] += data[jj] * dense[indices[jj], j]`` for ``jj`` in
``indptr[i]..indptr[i+1]``.  Both parallel engines partition work *by
output row* and keep that per-row accumulation order verbatim, so the
float64 result is bit-identical to scipy by construction at any thread
count — parallelism only changes *which core* owns a row, never the
order of the additions within it.  Row-parallelism requires the CSR
layout, which is why the engines advertise :attr:`SpmmEngine.prefers_csr`
and :class:`~repro.core.sweepcache.SweepCache` materializes its CSR
transposes for them regardless of the working-set budget.  Operands an
engine cannot row-parallelize (lazy CSC ``.T`` views, dense matrices,
mixed dtypes) fall back to the scipy expression — same bits, so the
fallback is invisible to results.

Engine selection mirrors the kernel registry: solver constructors accept
a *name* (``"auto"``, ``"scipy"``, ``"threads"``, ``"numba"``) or a
ready-made :class:`SpmmEngine` instance.  ``"auto"`` resolves to numba
when importable and scipy otherwise (the threaded engine is an explicit
opt-in: on the 1-core reference host it would only add dispatch
overhead, and "auto" must never regress the default).  Requesting
``"numba"`` explicitly without numba raises.  The sharded coordinator
pins ``"auto"`` to a concrete name via :func:`resolve_spmm_name` before
scattering shard state, so heterogeneous fleets run one implementation.

Thread budgets come from :mod:`repro.utils.threads`: an explicit
``spmm_threads=`` wins, else the process default installed by worker
mains (their fair share ``affinity_cores // pool_width``), else the
affinity core count — so W workers × T spmm threads never
oversubscribes the machine.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.kernels import numba_available
from repro.utils.threads import spmm_thread_default

#: Engine names accepted by solver constructors and ``SolverConfig``.
SPMM_ENGINES = ("auto", "scipy", "threads", "numba")

#: Below this many CSR rows a parallel engine runs the product inline:
#: the per-row work is so small that handing blocks to a pool (or
#: launching a prange region) costs more than the whole product.
#: Purely a speed guard — both paths are bit-identical.
MIN_PARALLEL_ROWS = 2048

MatrixLike = np.ndarray | sp.spmatrix


def validate_spmm(spmm: object) -> None:
    """Raise ``ValueError`` unless ``spmm`` is a known name or instance."""
    if isinstance(spmm, SpmmEngine):
        return
    if spmm not in SPMM_ENGINES:
        raise ValueError(
            f"spmm must be one of {SPMM_ENGINES} or an SpmmEngine "
            f"instance, got {spmm!r}"
        )


def validate_spmm_threads(threads: object) -> None:
    """Raise ``ValueError`` unless ``threads`` is ``None`` or an int ≥ 1."""
    if threads is None:
        return
    if not isinstance(threads, int) or isinstance(threads, bool) or threads < 1:
        raise ValueError(
            f"spmm_threads must be a positive int or None, got {threads!r}"
        )


def _resolve_threads(threads: int | None) -> int:
    validate_spmm_threads(threads)
    return int(threads) if threads is not None else spmm_thread_default()


class SpmmEngine:
    """Base sparse·dense product engine (the scipy reference path).

    ``matmul`` must return ``np.asarray(x @ dense)`` bit for bit in
    float64 — subclasses may only change *how fast* that value is
    produced.  ``prefers_csr`` tells :class:`~repro.core.sweepcache.
    SweepCache` that this engine row-parallelizes CSR operands, so the
    cache should materialize its CSR transposes past the working-set
    budget too (the lazy CSC view would silently fall back to scipy).
    """

    name = "scipy"
    #: Whether CSR-materialized operands unlock this engine's fast path.
    prefers_csr = False
    #: Resolved thread budget (1 for the serial reference engine).
    threads = 1

    def matmul(self, x: MatrixLike, dense: np.ndarray) -> np.ndarray:
        """``x @ dense`` as a plain ndarray, for sparse or dense ``x``."""
        return np.asarray(x @ dense)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name} threads={self.threads}>"


class ScipySpmmEngine(SpmmEngine):
    """Alias of the base implementation, for explicit construction."""


def _csr_row_block(x: sp.csr_matrix, start: int, stop: int) -> sp.csr_matrix:
    """Rows ``[start, stop)`` of a CSR matrix as zero-copy views.

    ``data``/``indices`` are numpy slices of the parent arrays; only the
    ``(stop-start+1)``-long rebased indptr is allocated.
    """
    indptr = x.indptr[start : stop + 1]
    base = indptr[0]
    return sp.csr_matrix(
        (x.data[base : indptr[-1]], x.indices[base : indptr[-1]], indptr - base),
        shape=(stop - start, x.shape[1]),
    )


class ThreadedSpmmEngine(SpmmEngine):
    """Row-block parallel CSR×dense over a thread pool.

    Splits the output rows into ``threads`` contiguous blocks and runs
    ``block @ dense`` concurrently — scipy's sparsetools release the
    GIL, so the blocks genuinely overlap.  Per-row accumulation order is
    scipy's own (each block *is* a scipy product), so results are
    bit-identical to the reference engine at any thread count.
    """

    name = "threads"
    prefers_csr = True

    def __init__(self, threads: int | None = None) -> None:
        self.threads = _resolve_threads(threads)
        # A 1-thread budget makes this engine exactly the scipy path, so
        # it must not override the transpose layout policy either — on a
        # 1-core host the opt-in engine is a no-op, not a regression.
        self.prefers_csr = self.threads > 1
        self._executor = None

    def _pool(self):
        if self._executor is None:
            from concurrent.futures import ThreadPoolExecutor

            self._executor = ThreadPoolExecutor(
                max_workers=self.threads, thread_name_prefix="repro-spmm"
            )
        return self._executor

    def matmul(self, x: MatrixLike, dense: np.ndarray) -> np.ndarray:
        rows = x.shape[0]
        if (
            self.threads <= 1
            or not sp.issparse(x)
            or x.format != "csr"
            or getattr(dense, "ndim", 0) != 2
            or rows < MIN_PARALLEL_ROWS
        ):
            return np.asarray(x @ dense)
        blocks = min(self.threads, max(1, rows // (MIN_PARALLEL_ROWS // 2)))
        if blocks <= 1:
            return np.asarray(x @ dense)
        bounds = np.linspace(0, rows, blocks + 1, dtype=np.int64)
        out = np.empty(
            (rows, dense.shape[1]), dtype=np.result_type(x.dtype, dense.dtype)
        )

        def run(block_index: int) -> None:
            start, stop = int(bounds[block_index]), int(bounds[block_index + 1])
            if stop > start:
                out[start:stop] = _csr_row_block(x, start, stop) @ dense

        # list() drains the iterator so worker exceptions propagate here.
        list(self._pool().map(run, range(blocks)))
        return out


class NumbaSpmmEngine(SpmmEngine):
    """``prange`` row-parallel CSR×dense, compiled lazily via numba.

    The jitted loop replays scipy's per-row accumulation verbatim
    (``jj`` in storage order, inner loop over the ``k`` columns), so
    float64 results are bit-identical to scipy at any thread count.
    ``fastmath`` stays off — it would license FMA contraction and
    reassociation, either of which breaks the contract.  Operands the
    loop cannot handle (non-CSR, mismatched dtypes, 1-d dense) fall
    back to the scipy expression, which produces the same bits.
    """

    name = "numba"
    prefers_csr = True

    def __init__(self, threads: int | None = None) -> None:
        if not numba_available():  # pragma: no cover - exercised via tests
            raise RuntimeError(
                "NumbaSpmmEngine requires numba, which is not importable"
            )
        self.threads = _resolve_threads(threads)
        self._impl = _numba_spmm_impl()

    def matmul(self, x: MatrixLike, dense: np.ndarray) -> np.ndarray:  # pragma: no cover - needs numba
        if (
            not sp.issparse(x)
            or x.format != "csr"
            or getattr(dense, "ndim", 0) != 2
            or x.dtype != dense.dtype
            or x.dtype not in (np.float64, np.float32)
        ):
            return np.asarray(x @ dense)
        import numba

        operand = np.ascontiguousarray(dense)
        out = np.zeros((x.shape[0], dense.shape[1]), dtype=x.dtype)
        ceiling = int(numba.config.NUMBA_NUM_THREADS)
        limit = max(1, min(self.threads, ceiling))
        previous = numba.get_num_threads()
        numba.set_num_threads(limit)
        try:
            self._impl(x.indptr, x.indices, x.data, operand, out)
        finally:
            numba.set_num_threads(previous)
        return out


_NUMBA_SPMM_CACHE = None


def _numba_spmm_impl():  # pragma: no cover - needs numba
    """Build (once) the jitted row-parallel CSR×dense dispatcher."""
    global _NUMBA_SPMM_CACHE
    if _NUMBA_SPMM_CACHE is not None:
        return _NUMBA_SPMM_CACHE
    from numba import njit, prange

    @njit(parallel=True, cache=True)
    def csr_matmul(indptr, indices, data, dense, out):
        rows, cols = out.shape
        for i in prange(rows):
            for jj in range(indptr[i], indptr[i + 1]):
                value = data[jj]
                row = indices[jj]
                for j in range(cols):
                    out[i, j] += value * dense[row, j]

    _NUMBA_SPMM_CACHE = csr_matmul
    return _NUMBA_SPMM_CACHE


_SCIPY_ENGINE = ScipySpmmEngine()

#: Constructed engines keyed by ``(name, resolved_threads)`` so thread
#: pools and jit dispatchers are shared across solver instances.
_ENGINES: dict[tuple[str, int], SpmmEngine] = {}


def resolve_spmm(
    spmm: object = "auto", threads: int | None = None
) -> SpmmEngine:
    """Resolve an engine name (or pass through an instance) to an engine.

    ``"auto"`` picks numba when importable and scipy otherwise — the
    threaded engine is never auto-selected, so the default path on any
    host is exactly the historical scipy expression.  An explicit
    ``"numba"`` request without numba raises, because silently falling
    back would invalidate a benchmark that believes it is measuring the
    compiled engine.
    """
    if isinstance(spmm, SpmmEngine):
        return spmm
    validate_spmm(spmm)
    validate_spmm_threads(threads)
    if spmm == "auto":
        spmm = "numba" if numba_available() else "scipy"
    if spmm == "scipy":
        return _SCIPY_ENGINE
    if spmm == "numba" and not numba_available():
        raise RuntimeError(
            "spmm='numba' was requested but numba is not importable; "
            "install numba or use spmm='auto' (which falls back to the "
            "bit-identical scipy engine)"
        )
    resolved = _resolve_threads(threads)
    key = (spmm, resolved)
    engine = _ENGINES.get(key)
    if engine is None:
        cls = ThreadedSpmmEngine if spmm == "threads" else NumbaSpmmEngine
        engine = cls(threads=resolved)
        _ENGINES[key] = engine
    return engine


def get_spmm(name: str, threads: int | None = None) -> SpmmEngine:
    """Resolve a *concrete* engine name (``"scipy"/"threads"/"numba"``).

    Used by the sharded worker commands, which receive the already
    auto-resolved name in their shard payload so every shard — local or
    remote — runs the implementation the coordinator chose.
    """
    return resolve_spmm(name, threads)


def resolve_spmm_name(spmm: object = "auto") -> str:
    """Auto-resolve an spmm choice to its concrete name.

    The sharded coordinators call this once before scattering shard
    state so ``"auto"`` means "whatever the coordinator has", not
    "whatever each worker host happens to have" — the same cross-host
    determinism pin the kernel registry applies.
    """
    if isinstance(spmm, SpmmEngine):
        return spmm.name if spmm.name in SPMM_ENGINES else "scipy"
    validate_spmm(spmm)
    if spmm == "auto":
        return "numba" if numba_available() else "scipy"
    return str(spmm)


def default_spmm() -> SpmmEngine:
    """The engine used when products are computed without an explicit one."""
    return _SCIPY_ENGINE
