"""Fused element-wise kernels for the multiplicative sweep tails.

Every projector-style update in :mod:`repro.core.updates` ends with the
same element-wise tail: assemble a numerator and a denominator from the
attraction/projection GEMM outputs (plus optional graph / prior terms) and
apply ``S <- S * sqrt(max(num, 0) / max(den, EPS))``.  Written naively with
NumPy that tail costs five full passes over ``rows x k`` temporaries; at
realistic scales (hundreds of thousands of users) those passes are pure
memory traffic.  This module fuses them:

* :class:`NumpyKernel` — the always-available fallback.  It evaluates the
  exact same IEEE operation sequence as the historical
  ``safe_sqrt_ratio``-based code (same maxima, same division, same square
  root, in the same order), but chains them through pre-allocated output
  buffers so the tail touches two temporaries instead of five.  Because
  every operation is element-wise, buffer reuse cannot change a single
  bit of the result.
* :class:`NumbaKernel` — ``@njit`` single-pass loops, compiled lazily on
  first use when :mod:`numba` is importable.  The loops perform the
  identical per-element operation sequence (no ``fastmath``, so LLVM may
  not contract ``a + b*c`` into an FMA or reorder the maxima), which makes
  the float64 results bit-identical to the NumPy kernel.  The win is one
  pass over memory instead of two, and no intermediate allocations.

Matrix products (the GEMMs and sparse products feeding the tails) are
*not* reimplemented here: BLAS/scipy already run them at hardware speed,
and a hand-rolled reduction could not stay bit-compatible with BLAS's
pairwise accumulation order.  The kernels deliberately cover only the
element-wise region where bit-exact fusion is possible.

Kernel selection mirrors the partitioner idiom: solver constructors accept
a *name* (``"auto"``, ``"numpy"``, ``"numba"``) or a ready-made
:class:`Kernel` instance (used by the benchmarks to measure baseline
implementations).  ``"auto"`` resolves to numba when importable and numpy
otherwise; requesting ``"numba"`` explicitly on a host without numba is an
error rather than a silent fallback.

The module also owns the ``dtype`` registry for the opt-in float32 mode.
Float64 remains the default and keeps the repo's bit-identity guarantees;
float32 halves memory traffic on the bandwidth-bound sweeps and is
validated to track the float64 objective trajectory within a documented
tolerance (see ``tests/core/test_kernels.py``).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.utils.matrices import EPS

#: Kernel names accepted by solver constructors and ``SolverConfig``.
KERNELS = ("auto", "numpy", "numba")

#: Factor dtypes accepted by solver constructors and ``SolverConfig``.
#: float64 is the bit-identity default; float32 is the opt-in
#: bandwidth-saving mode.
DTYPES = ("float64", "float32")


def numba_available() -> bool:
    """True when :mod:`numba` is importable in this interpreter."""
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


def validate_kernel(kernel: object) -> None:
    """Raise ``ValueError`` unless ``kernel`` is a known name or instance."""
    if isinstance(kernel, Kernel):
        return
    if kernel not in KERNELS:
        raise ValueError(
            f"kernel must be one of {KERNELS} or a Kernel instance, "
            f"got {kernel!r}"
        )


def validate_dtype(dtype: str) -> None:
    """Raise ``ValueError`` unless ``dtype`` is a supported factor dtype."""
    if dtype not in DTYPES:
        raise ValueError(f"dtype must be one of {DTYPES}, got {dtype!r}")


def resolve_dtype(dtype: str) -> np.dtype:
    """Map a configured dtype name to the numpy dtype object."""
    validate_dtype(dtype)
    return np.dtype(dtype)


def resolve_kernel(kernel: object = "auto", threads: int | None = None) -> "Kernel":
    """Resolve a kernel name (or pass through an instance) to a kernel.

    ``"auto"`` picks numba when importable, numpy otherwise — so the same
    configuration runs everywhere, at the best speed available.  An
    explicit ``"numba"`` request on a host without numba raises, because
    silently falling back would invalidate a benchmark that believes it is
    measuring compiled kernels.

    ``threads`` is the tail thread budget for the numba kernel (the
    solvers pass their ``spmm_threads`` so tails and products share one
    budget); ``None`` uses the process default from
    :func:`repro.utils.threads.spmm_thread_default`.  Every tail is
    element-wise, so threading cannot change a bit of the result.
    """
    if isinstance(kernel, Kernel):
        return kernel
    validate_kernel(kernel)
    if kernel == "numpy":
        return _NUMPY_KERNEL
    if kernel == "auto":
        return (
            _ensure_numba_kernel(threads)
            if numba_available()
            else _NUMPY_KERNEL
        )
    if not numba_available():
        raise RuntimeError(
            "kernel='numba' was requested but numba is not importable; "
            "install numba or use kernel='auto' (which falls back to the "
            "bit-compatible NumPy kernels)"
        )
    return _ensure_numba_kernel(threads)


def cast_matrix(matrix, dtype: np.dtype):
    """Cast a dense/sparse matrix (or ``None``) to ``dtype``.

    A no-op (returning the original object) when the dtype already
    matches, so the float64 default path shares memory with the caller
    exactly as before.
    """
    if matrix is None:
        return None
    if matrix.dtype == dtype:
        return matrix
    return matrix.astype(dtype)


class Kernel:
    """Fused element-wise sweep tails — NumPy implementation.

    The methods mirror the tail of each projector-style update rule.  All
    of them may freely overwrite their *numerator-like* temporaries but
    never mutate ``s``/``attraction``/``projection``/graph/prior inputs.
    """

    name = "numpy"

    def accumulate(self, acc: np.ndarray, update: np.ndarray) -> np.ndarray:
        """``acc + update`` where ``acc`` is a caller-owned fresh array.

        Used for the attraction sums (``XpSfHpᵀ + XrᵀSu`` and friends):
        the fused kernels add in place — bitwise the same sum, one fewer
        full-height temporary on the hottest allocations of a sweep.
        """
        acc += update
        return acc

    # ``S * sqrt(max(num, 0) / max(den, EPS))`` evaluated with two
    # temporaries.  np.maximum against a Python float keeps the array
    # dtype under NEP 50, so float32 inputs stay float32 throughout.
    def multiply_tail(
        self, s: np.ndarray, numerator: np.ndarray, denominator: np.ndarray
    ) -> np.ndarray:
        num = np.maximum(numerator, 0.0)
        den = np.maximum(denominator, EPS)
        np.divide(num, den, out=num)
        np.sqrt(num, out=num)
        np.multiply(s, num, out=num)
        return num

    def projector_tail(
        self, s: np.ndarray, attraction: np.ndarray, projection: np.ndarray
    ) -> np.ndarray:
        """Plain projector step: ``S * sqrt(att / proj)`` (Eqs. 20-21)."""
        return self.multiply_tail(s, attraction, projection)

    def graph_terms(
        self,
        attraction: np.ndarray,
        projection: np.ndarray,
        gu_su: np.ndarray,
        du_su: np.ndarray,
        beta: float,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Numerator/denominator of the graph-regularized ``Su`` step.

        Returned separately (rather than fused into the tail) because the
        online update adds temporal-prior terms to selected rows before
        the square root; see :func:`repro.core.updates.update_su_online`.
        """
        numerator = np.multiply(gu_su, beta)
        np.add(attraction, numerator, out=numerator)
        denominator = np.multiply(du_su, beta)
        np.add(projection, denominator, out=denominator)
        return numerator, denominator

    def graph_tail(
        self,
        su: np.ndarray,
        attraction: np.ndarray,
        projection: np.ndarray,
        gu_su: np.ndarray,
        du_su: np.ndarray,
        beta: float,
    ) -> np.ndarray:
        """Graph-regularized projector step for ``Su`` (Eq. 22)."""
        numerator, denominator = self.graph_terms(
            attraction, projection, gu_su, du_su, beta
        )
        return self.multiply_tail(su, numerator, denominator)

    def prior_tail(
        self,
        sf: np.ndarray,
        attraction: np.ndarray,
        projection: np.ndarray,
        prior: np.ndarray,
        alpha: float,
    ) -> np.ndarray:
        """Lexicon-prior projector step for ``Sf`` (Eq. 23)."""
        numerator = np.multiply(prior, alpha)
        np.add(attraction, numerator, out=numerator)
        denominator = np.multiply(sf, alpha)
        np.add(projection, denominator, out=denominator)
        return self.multiply_tail(sf, numerator, denominator)


class NumpyKernel(Kernel):
    """Alias of the base implementation, for explicit construction."""


#: Below this many rows the numba kernel always uses its serial tails:
#: a prange region costs a fork/join barrier, and the tails are pure
#: memory traffic that small arrays finish before threads even start.
#: Purely a speed guard — the tails are element-wise, so serial and
#: parallel variants are bit-identical.
PARALLEL_TAIL_MIN_ROWS = 8192


class NumbaKernel(Kernel):
    """Single-pass ``@njit`` tails, bit-identical to :class:`NumpyKernel`.

    Compilation is lazy (first call per dtype signature); the compiled
    dispatchers are module-level so every solver instance shares them,
    and ``cache=True`` persists them to disk so forked/spawned worker
    processes load the compilation instead of re-JITting per worker.
    ``fastmath`` stays off: it would license LLVM to contract
    ``a + beta*b`` into an FMA or reassociate the maxima, either of which
    breaks the float64 bit-identity contract with the NumPy kernel.

    ``threads`` (default: the shared budget from
    :func:`repro.utils.threads.spmm_thread_default`) enables ``prange``
    row-parallel tail variants for arrays past
    :data:`PARALLEL_TAIL_MIN_ROWS`; every tail is element-wise, so the
    parallel variants are bit-identical at any thread count.
    """

    name = "numba"

    def __init__(self, threads: int | None = None) -> None:
        if not numba_available():  # pragma: no cover - exercised via tests
            raise RuntimeError(
                "NumbaKernel requires numba, which is not importable"
            )
        if threads is None:
            from repro.utils.threads import spmm_thread_default

            threads = spmm_thread_default()
        self.threads = max(1, int(threads))
        self._impl = _numba_impl()

    def _run(self, base: str, rows: int, *args):  # pragma: no cover - needs numba
        """Dispatch to the serial or prange variant under the budget."""
        if self.threads <= 1 or rows < PARALLEL_TAIL_MIN_ROWS:
            return self._impl[base](*args)
        import numba

        limit = max(1, min(self.threads, int(numba.config.NUMBA_NUM_THREADS)))
        previous = numba.get_num_threads()
        numba.set_num_threads(limit)
        try:
            return self._impl[base + "_par"](*args)
        finally:
            numba.set_num_threads(previous)

    def multiply_tail(self, s, numerator, denominator):
        return self._run(
            "multiply_tail", s.shape[0], s, numerator, denominator, EPS
        )

    def projector_tail(self, s, attraction, projection):
        return self._run(
            "multiply_tail", s.shape[0], s, attraction, projection, EPS
        )

    def graph_terms(self, attraction, projection, gu_su, du_su, beta):
        return self._run(
            "graph_terms", attraction.shape[0],
            attraction, projection, gu_su, du_su, beta,
        )

    def graph_tail(self, su, attraction, projection, gu_su, du_su, beta):
        return self._run(
            "graph_tail", su.shape[0],
            su, attraction, projection, gu_su, du_su, beta, EPS,
        )

    def prior_tail(self, sf, attraction, projection, prior, alpha):
        return self._run(
            "prior_tail", sf.shape[0],
            sf, attraction, projection, prior, alpha, EPS,
        )


_NUMBA_CACHE: dict | None = None


def _numba_impl() -> dict:
    """Build (once) the jitted tail dispatchers.

    The loops spell out the per-element operation sequence of the NumPy
    kernel — ``max`` via explicit comparisons (NumPy's ``maximum``
    semantics for the values that occur here: the inputs are products of
    non-negative factors, so NaN never arises), then divide, sqrt,
    multiply, in that order.  Each tail is built twice: a serial variant
    and a ``prange`` row-parallel one (suffix ``_par``) — identical
    bodies, so identical bits, and :class:`NumbaKernel` picks by row
    count and thread budget.  ``cache=True`` persists the compilations
    to disk so worker processes don't pay the JIT per fork.
    """
    global _NUMBA_CACHE
    if _NUMBA_CACHE is not None:
        return _NUMBA_CACHE
    from numba import njit, prange

    @njit(cache=True)
    def multiply_tail(s, numerator, denominator, eps):
        out = np.empty_like(s)
        rows, cols = s.shape
        for i in range(rows):
            for j in range(cols):
                num = numerator[i, j]
                if num < 0.0:
                    num = 0.0
                den = denominator[i, j]
                if den < eps:
                    den = eps
                out[i, j] = s[i, j] * np.sqrt(num / den)
        return out

    @njit(cache=True, parallel=True)
    def multiply_tail_par(s, numerator, denominator, eps):
        out = np.empty_like(s)
        rows, cols = s.shape
        for i in prange(rows):
            for j in range(cols):
                num = numerator[i, j]
                if num < 0.0:
                    num = 0.0
                den = denominator[i, j]
                if den < eps:
                    den = eps
                out[i, j] = s[i, j] * np.sqrt(num / den)
        return out

    @njit(cache=True)
    def graph_terms(attraction, projection, gu_su, du_su, beta):
        numerator = np.empty_like(attraction)
        denominator = np.empty_like(projection)
        rows, cols = attraction.shape
        for i in range(rows):
            for j in range(cols):
                numerator[i, j] = attraction[i, j] + gu_su[i, j] * beta
                denominator[i, j] = projection[i, j] + du_su[i, j] * beta
        return numerator, denominator

    @njit(cache=True, parallel=True)
    def graph_terms_par(attraction, projection, gu_su, du_su, beta):
        numerator = np.empty_like(attraction)
        denominator = np.empty_like(projection)
        rows, cols = attraction.shape
        for i in prange(rows):
            for j in range(cols):
                numerator[i, j] = attraction[i, j] + gu_su[i, j] * beta
                denominator[i, j] = projection[i, j] + du_su[i, j] * beta
        return numerator, denominator

    @njit(cache=True)
    def graph_tail(su, attraction, projection, gu_su, du_su, beta, eps):
        out = np.empty_like(su)
        rows, cols = su.shape
        for i in range(rows):
            for j in range(cols):
                num = attraction[i, j] + gu_su[i, j] * beta
                if num < 0.0:
                    num = 0.0
                den = projection[i, j] + du_su[i, j] * beta
                if den < eps:
                    den = eps
                out[i, j] = su[i, j] * np.sqrt(num / den)
        return out

    @njit(cache=True, parallel=True)
    def graph_tail_par(su, attraction, projection, gu_su, du_su, beta, eps):
        out = np.empty_like(su)
        rows, cols = su.shape
        for i in prange(rows):
            for j in range(cols):
                num = attraction[i, j] + gu_su[i, j] * beta
                if num < 0.0:
                    num = 0.0
                den = projection[i, j] + du_su[i, j] * beta
                if den < eps:
                    den = eps
                out[i, j] = su[i, j] * np.sqrt(num / den)
        return out

    @njit(cache=True)
    def prior_tail(sf, attraction, projection, prior, alpha, eps):
        out = np.empty_like(sf)
        rows, cols = sf.shape
        for i in range(rows):
            for j in range(cols):
                num = attraction[i, j] + prior[i, j] * alpha
                if num < 0.0:
                    num = 0.0
                den = projection[i, j] + sf[i, j] * alpha
                if den < eps:
                    den = eps
                out[i, j] = sf[i, j] * np.sqrt(num / den)
        return out

    @njit(cache=True, parallel=True)
    def prior_tail_par(sf, attraction, projection, prior, alpha, eps):
        out = np.empty_like(sf)
        rows, cols = sf.shape
        for i in prange(rows):
            for j in range(cols):
                num = attraction[i, j] + prior[i, j] * alpha
                if num < 0.0:
                    num = 0.0
                den = projection[i, j] + sf[i, j] * alpha
                if den < eps:
                    den = eps
                out[i, j] = sf[i, j] * np.sqrt(num / den)
        return out

    _NUMBA_CACHE = {
        "multiply_tail": multiply_tail,
        "multiply_tail_par": multiply_tail_par,
        "graph_terms": graph_terms,
        "graph_terms_par": graph_terms_par,
        "graph_tail": graph_tail,
        "graph_tail_par": graph_tail_par,
        "prior_tail": prior_tail,
        "prior_tail_par": prior_tail_par,
    }
    return _NUMBA_CACHE


_NUMPY_KERNEL = NumpyKernel()

#: Lazily constructed numba kernels keyed by resolved thread budget;
#: building one triggers (deferred) jit compilation machinery, so module
#: import must not touch this.
_NUMBA_KERNELS: dict[int, Kernel] = {}


def _ensure_numba_kernel(threads: int | None = None) -> Kernel:
    kernel = NumbaKernel(threads=threads)
    return _NUMBA_KERNELS.setdefault(kernel.threads, kernel)


def get_kernel(name: str, threads: int | None = None) -> Kernel:
    """Resolve a *concrete* kernel name (``"numpy"``/``"numba"``).

    Used by the sharded worker commands, which receive the already
    auto-resolved name in their shard payload so every shard — local or
    remote — runs the same implementation the coordinator chose.
    ``threads`` is the tail thread budget (speed-only; tails are
    element-wise), resolved locally per worker.
    """
    return resolve_kernel(name, threads)


def resolve_kernel_name(kernel: object = "auto") -> str:
    """Auto-resolve a kernel choice to its concrete name.

    The sharded solvers call this once before scattering shard state so
    that ``"auto"`` means "whatever the coordinator has", not "whatever
    each worker host happens to have" — keeping the backend bit-identity
    guarantee intact across heterogeneous fleets.
    """
    kernel = resolve_kernel(kernel)
    if kernel.name not in KERNELS:  # a bench-supplied custom instance
        return "numpy"
    return kernel.name


def default_kernel() -> Kernel:
    """The kernel used when updates are called without an explicit one."""
    return _NUMPY_KERNEL
