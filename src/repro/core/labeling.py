"""Mapping cluster columns to sentiment classes without ground truth.

The factorization is invariant to column permutations: nothing forces
cluster column 0 to be the *positive* class.  Evaluation against ground
truth uses majority-vote alignment (Section 5), but applications that
need class *identity* — "what share of users is positive?" — must not
touch labels.  The unsupervised answer is the sentiment lexicon: compare
the learned feature factor ``Sf`` with the prior ``Sf0`` and assign each
cluster column to the sentiment class it loads the lexicon words of.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.utils.matrices import EPS


def lexicon_column_alignment(sf: np.ndarray, sf0: np.ndarray) -> np.ndarray:
    """Permutation ``perm`` with ``perm[cluster] = sentiment class``.

    Solves the assignment maximizing ``Σ_f Sf[f, cluster]·Sf0[f, class]``
    over one-to-one cluster→class maps (Hungarian).  Columns of ``Sf``
    are max-normalized first so a large-scale column cannot buy every
    class.
    """
    if sf.shape != sf0.shape:
        raise ValueError(f"shape mismatch: sf {sf.shape} vs sf0 {sf0.shape}")
    normalized = sf / np.maximum(sf.max(axis=0, keepdims=True), EPS)
    # Subtract each feature's mean prior so uniform (out-of-lexicon) rows
    # contribute nothing to the affinity.
    centered_prior = sf0 - sf0.mean(axis=1, keepdims=True)
    affinity = normalized.T @ centered_prior        # clusters × classes
    rows, cols = linear_sum_assignment(-affinity)
    perm = np.empty(sf.shape[1], dtype=np.int64)
    perm[rows] = cols
    return perm


def apply_alignment(labels: np.ndarray, perm: np.ndarray) -> np.ndarray:
    """Relabel cluster ids into class ids via ``perm``."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.size and (labels.min() < 0 or labels.max() >= perm.size):
        raise ValueError(
            f"labels outside [0, {perm.size}): "
            f"[{labels.min()}, {labels.max()}]"
        )
    return perm[labels]
