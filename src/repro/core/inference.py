"""Fold-in inference: classify unseen tweets/users with fitted factors.

The solvers cluster the tweets they were fitted on; a deployed system
also needs to score *new* content without refitting (e.g. classify the
next tweet as it arrives, between online snapshots).  Fold-in is the
standard NMF answer: hold the learned ``Sf``/``Hp``/``Hu`` (and, for
users, ``Sp``) fixed and solve the non-negative least squares
``min_{s≥0} ||x − s·H·Sfᵀ||²`` per new row with multiplicative
updates.  The gradient splits into the attraction ``N = X·Sf·Hᵀ`` and
the fixed ``k×k`` model gram ``G = H·(SfᵀSf)·Hᵀ``, giving the rule
``s ← s ∘ N / (s·G)`` — each row's update involves only that row and
the fixed factors, so memberships are independent of how rows are
batched together (the serving layer relies on this to cache and
micro-batch classify traffic).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.spmm import SpmmEngine, default_spmm
from repro.core.state import FactorSet
from repro.utils.matrices import hard_assignments, row_normalize, safe_divide
from repro.utils.rng import RandomState

MatrixLike = np.ndarray | sp.spmatrix


def _fold_in(
    attraction: np.ndarray,
    gram: np.ndarray,
    iterations: int,
) -> np.ndarray:
    """Iterate ``S ← S ∘ N / (S·G)`` with fixed ``N`` and model gram ``G``.

    Row-independent by construction: row *i*'s denominator is
    ``S[i]·G``, never a function of the other rows.  The objective is
    convex per row, so iteration starts from a constant interior point
    instead of random noise — results are fully deterministic and
    identical no matter how rows are micro-batched or cached.  An
    all-zero attraction row (no evidence) collapses to exact zeros on
    the first iteration.
    """
    memberships = np.full(attraction.shape, 0.5)
    for _ in range(iterations):
        memberships = memberships * safe_divide(
            attraction, memberships @ gram
        )
    return memberships


def infer_tweet_memberships(
    xp_new: MatrixLike,
    factors: FactorSet,
    iterations: int = 25,
    seed: RandomState = 0,
    gram: np.ndarray | None = None,
    spmm: SpmmEngine | None = None,
) -> np.ndarray:
    """Soft sentiment memberships for unseen tweet feature rows.

    Parameters
    ----------
    xp_new:
        ``(rows, l)`` feature matrix of the new tweets, vectorized with
        the *training* vocabulary.
    factors:
        A fitted :class:`~repro.core.state.FactorSet` (``sf``/``hp`` are
        used; the tweets the model was fitted on are irrelevant here).
    seed:
        Retained for API stability; the NNLS fold-in starts from a
        deterministic interior point, so results never depend on it.
    gram:
        Optional precomputed ``Hp·(SfᵀSf)·Hpᵀ``.  The serving layer
        computes it once per model instead of per call — the ``O(l·k²)``
        reduction is the dominant cost of small-batch fold-in.
    spmm:
        Optional :class:`~repro.core.spmm.SpmmEngine` for the
        ``X·Sf``-shaped sparse·dense attraction product.  Engines are
        float64 bit-identical, so results never depend on the choice —
        it only lets the serving layer's ``spmm=`` knob accelerate
        classify traffic.  Defaults to the scipy reference.

    Returns row-normalized memberships, shape ``(rows, k)``.
    """
    if xp_new.shape[1] != factors.num_features:
        raise ValueError(
            f"xp_new has {xp_new.shape[1]} features; model expects "
            f"{factors.num_features}"
        )
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    engine = spmm if spmm is not None else default_spmm()
    attraction = engine.matmul(xp_new, factors.sf) @ factors.hp.T
    if gram is None:
        gram = factors.hp @ (factors.sf.T @ factors.sf) @ factors.hp.T
    memberships = _fold_in(attraction, gram, iterations)
    return row_normalize(memberships)


def infer_tweet_sentiments(
    xp_new: MatrixLike,
    factors: FactorSet,
    iterations: int = 25,
    seed: RandomState = 0,
    spmm: SpmmEngine | None = None,
) -> np.ndarray:
    """Hard sentiment class per unseen tweet row."""
    return hard_assignments(
        infer_tweet_memberships(xp_new, factors, iterations, seed, spmm=spmm)
    )


def infer_user_memberships(
    xu_new: MatrixLike,
    factors: FactorSet,
    xr_new: MatrixLike | None = None,
    iterations: int = 25,
    seed: RandomState = 0,
    spmm: SpmmEngine | None = None,
) -> np.ndarray:
    """Soft sentiment memberships for unseen users.

    Parameters
    ----------
    xu_new:
        ``(rows, l)`` aggregated feature rows of the new users.
    xr_new:
        Optional ``(rows, n)`` incidence against the *fitted* tweets
        (columns must align with ``factors.sp``); adds the retweet
        attraction ``Xr·Sp`` of Eq. (4) and the matching ``SpᵀSp``
        term to the model gram.
    seed:
        Retained for API stability; the NNLS fold-in starts from a
        deterministic interior point, so results never depend on it.
    spmm:
        Optional :class:`~repro.core.spmm.SpmmEngine` for the sparse
        attraction products (bit-identical across engines; defaults to
        the scipy reference).
    """
    if xu_new.shape[1] != factors.num_features:
        raise ValueError(
            f"xu_new has {xu_new.shape[1]} features; model expects "
            f"{factors.num_features}"
        )
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    engine = spmm if spmm is not None else default_spmm()
    attraction = engine.matmul(xu_new, factors.sf) @ factors.hu.T
    gram = factors.hu @ (factors.sf.T @ factors.sf) @ factors.hu.T
    if xr_new is not None:
        if xr_new.shape[1] != factors.num_tweets:
            raise ValueError(
                f"xr_new has {xr_new.shape[1]} tweet columns; model has "
                f"{factors.num_tweets}"
            )
        if xr_new.shape[0] != xu_new.shape[0]:
            raise ValueError(
                f"xr_new has {xr_new.shape[0]} rows but xu_new has "
                f"{xu_new.shape[0]}"
            )
        attraction = attraction + engine.matmul(xr_new, factors.sp)
        gram = gram + factors.sp.T @ factors.sp
    memberships = _fold_in(attraction, gram, iterations)
    return row_normalize(memberships)


def infer_user_sentiments(
    xu_new: MatrixLike,
    factors: FactorSet,
    xr_new: MatrixLike | None = None,
    iterations: int = 25,
    seed: RandomState = 0,
    spmm: SpmmEngine | None = None,
) -> np.ndarray:
    """Hard sentiment class per unseen user row."""
    return hard_assignments(
        infer_user_memberships(
            xu_new, factors, xr_new, iterations, seed, spmm=spmm
        )
    )
