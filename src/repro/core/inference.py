"""Fold-in inference: classify unseen tweets/users with fitted factors.

The solvers cluster the tweets they were fitted on; a deployed system
also needs to score *new* content without refitting (e.g. classify the
next tweet as it arrives, between online snapshots).  Fold-in is the
standard NMF answer: hold the learned ``Sf``/``Hp``/``Hu`` (and, for
users, ``Sp``) fixed and run the multiplicative update only on the new
rows — each new row's membership converges independently because the
fixed factors fully determine its attraction.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.state import FactorSet
from repro.utils.matrices import hard_assignments, row_normalize, safe_sqrt_ratio
from repro.utils.rng import RandomState, spawn_rng

MatrixLike = np.ndarray | sp.spmatrix


def _fold_in(
    attraction: np.ndarray,
    num_classes: int,
    iterations: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Iterate ``S ← S ∘ sqrt(N / S·Sᵀ·N)`` with fixed attraction ``N``."""
    rows = attraction.shape[0]
    memberships = rng.uniform(0.01, 1.0, size=(rows, num_classes))
    for _ in range(iterations):
        denominator = memberships @ (memberships.T @ attraction)
        memberships = memberships * safe_sqrt_ratio(attraction, denominator)
    return memberships


def infer_tweet_memberships(
    xp_new: MatrixLike,
    factors: FactorSet,
    iterations: int = 25,
    seed: RandomState = 0,
) -> np.ndarray:
    """Soft sentiment memberships for unseen tweet feature rows.

    Parameters
    ----------
    xp_new:
        ``(rows, l)`` feature matrix of the new tweets, vectorized with
        the *training* vocabulary.
    factors:
        A fitted :class:`~repro.core.state.FactorSet` (``sf``/``hp`` are
        used; the tweets the model was fitted on are irrelevant here).

    Returns row-normalized memberships, shape ``(rows, k)``.
    """
    if xp_new.shape[1] != factors.num_features:
        raise ValueError(
            f"xp_new has {xp_new.shape[1]} features; model expects "
            f"{factors.num_features}"
        )
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    attraction = np.asarray(xp_new @ factors.sf) @ factors.hp.T
    memberships = _fold_in(
        attraction, factors.num_classes, iterations, spawn_rng(seed)
    )
    return row_normalize(memberships)


def infer_tweet_sentiments(
    xp_new: MatrixLike,
    factors: FactorSet,
    iterations: int = 25,
    seed: RandomState = 0,
) -> np.ndarray:
    """Hard sentiment class per unseen tweet row."""
    return hard_assignments(
        infer_tweet_memberships(xp_new, factors, iterations, seed)
    )


def infer_user_memberships(
    xu_new: MatrixLike,
    factors: FactorSet,
    xr_new: MatrixLike | None = None,
    iterations: int = 25,
    seed: RandomState = 0,
) -> np.ndarray:
    """Soft sentiment memberships for unseen users.

    Parameters
    ----------
    xu_new:
        ``(rows, l)`` aggregated feature rows of the new users.
    xr_new:
        Optional ``(rows, n)`` incidence against the *fitted* tweets
        (columns must align with ``factors.sp``); adds the retweet
        attraction ``Xr·Sp`` of Eq. (4).
    """
    if xu_new.shape[1] != factors.num_features:
        raise ValueError(
            f"xu_new has {xu_new.shape[1]} features; model expects "
            f"{factors.num_features}"
        )
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    attraction = np.asarray(xu_new @ factors.sf) @ factors.hu.T
    if xr_new is not None:
        if xr_new.shape[1] != factors.num_tweets:
            raise ValueError(
                f"xr_new has {xr_new.shape[1]} tweet columns; model has "
                f"{factors.num_tweets}"
            )
        if xr_new.shape[0] != xu_new.shape[0]:
            raise ValueError(
                f"xr_new has {xr_new.shape[0]} rows but xu_new has "
                f"{xu_new.shape[0]}"
            )
        attraction = attraction + np.asarray(xr_new @ factors.sp)
    memberships = _fold_in(
        attraction, factors.num_classes, iterations, spawn_rng(seed)
    )
    return row_normalize(memberships)


def infer_user_sentiments(
    xu_new: MatrixLike,
    factors: FactorSet,
    xr_new: MatrixLike | None = None,
    iterations: int = 25,
    seed: RandomState = 0,
) -> np.ndarray:
    """Hard sentiment class per unseen user row."""
    return hard_assignments(
        infer_user_memberships(xu_new, factors, xr_new, iterations, seed)
    )
