"""Multiplicative update kernels (Section 3.1 and Section 4.1).

Every rule has the shape ``S ← S ∘ sqrt(numerator / denominator)`` where
the numerator collects the negative part of the KKT gradient and the
denominator the positive part.

Two equivalent-at-stationarity formulations are provided for the
orthogonality-constrained factors (``Sf``, ``Sp``, ``Su``):

- ``"projector"`` (default) — the closed form of Ding et al. [9], the
  source the paper cites for its rules ("following the updating rules
  proposed and proved in [9]").  The Lagrangian ``Δ`` is absorbed via
  ``S·Δ + S·(gram) = S·Sᵀ·N``, yielding all-non-negative numerators and
  denominators and stable iterations.  Graph-regularization terms stay
  explicit with the standard ``Du``/``Gu`` split (provably monotone for
  GNMF-style objectives).
- ``"lagrangian"`` — the literal ``Δ = Δ⁺ − Δ⁻`` split as printed in the
  paper's derivation (Eqs. 7, 9, 11, 24, 26).  This transcription is the
  intermediate proof form; iterated verbatim it is only locally stable
  (it can blow up once a factor column collapses), so it is exposed for
  fidelity ablation, guarded by a per-step ratio clip.

``Hp``/``Hu`` (Eqs. 12, 13) are the plain, provably non-increasing NMF
updates in both styles.

Sparse data matrices are consumed as ``scipy.sparse`` and only multiplied
against ``k``-column dense factors; the projector ``S·Sᵀ·N`` is evaluated
as ``S·(Sᵀ·N)`` so every update is ``O(nnz·k + rows·k²)``.

Every rule accepts an optional :class:`~repro.core.sweepcache.SweepCache`;
when provided, products whose inputs are unchanged since an earlier update
in the same sweep (``Xp·Sf``, ``Xu·Sf``, the factor grams) are reused
instead of recomputed, and CSR-materialized data-matrix transposes
replace the lazy ``.T`` views in the ``Xrᵀ·Su`` / ``Xpᵀ·Sp`` / ``Xuᵀ·Su``
products whenever the cache's working-set policy says the CSR layout
wins (see :data:`repro.core.sweepcache.TRANSPOSE_OPERAND_BUDGET`).  The
cached path evaluates the exact same expressions (CSR materialization
preserves per-row accumulation order), so results are bit-identical to
the uncached path either way.

Every projector-style rule also accepts an optional
:class:`~repro.core.kernels.Kernel` that evaluates the fused element-wise
tail ``S ∘ sqrt(max(num, 0)/max(den, EPS))``; when omitted, the NumPy
kernel is used.  Kernels are bit-compatible with each other in float64
(see :mod:`repro.core.kernels`), so this choice affects speed only.
"""

from __future__ import annotations

from typing import Literal

import numpy as np
import scipy.sparse as sp

from repro.core.kernels import Kernel, default_kernel
from repro.core.sweepcache import SweepCache
from repro.utils.matrices import nonneg_split, safe_sqrt_ratio

#: Per-iteration bound on the multiplicative step, used by the
#: ``"lagrangian"`` style (see :func:`repro.utils.matrices.safe_sqrt_ratio`).
MAX_UPDATE_RATIO = 4.0

MatrixLike = np.ndarray | sp.spmatrix
UpdateStyle = Literal["projector", "lagrangian"]


def _dot(x: MatrixLike, dense: np.ndarray) -> np.ndarray:
    """``x @ dense`` returning a plain ndarray for sparse or dense ``x``."""
    # repro-lint: disable=REP001 -- the sanctioned scipy-reference fallback
    # used when no spmm engine is configured; engines are defined to match
    # this expression bit for bit.
    return np.asarray(x @ dense)


def _cache_dot(
    cache: SweepCache | None, x: MatrixLike, dense: np.ndarray
) -> np.ndarray:
    """``x @ dense`` through the cache's spmm engine when one is present.

    Engines are float64 bit-identical (see :mod:`repro.core.spmm`), so
    routing through the cache never changes a result — it only lets one
    solver-level knob accelerate every product of a sweep.
    """
    if cache is not None:
        return cache.dot(x, dense)
    return _dot(x, dense)


def _project(s: np.ndarray, n: np.ndarray) -> np.ndarray:
    """``S·Sᵀ·N`` computed as ``S·(Sᵀ·N)`` — O(rows·k²)."""
    return s @ (s.T @ n)


# --------------------------------------------------------------------- #
# Association factors (plain NMF updates)
# --------------------------------------------------------------------- #


def update_hp(
    hp: np.ndarray,
    sp_factor: np.ndarray,
    sf: np.ndarray,
    xp: MatrixLike,
    cache: SweepCache | None = None,
    kernel: Kernel | None = None,
) -> np.ndarray:
    """Eq. (12): ``Hp ← Hp ∘ sqrt(SpᵀXpSf / SpᵀSpHpSfᵀSf)``."""
    kernel = kernel if kernel is not None else default_kernel()
    xp_sf = cache.xp_sf(sf) if cache is not None else _dot(xp, sf)
    if cache is not None:
        denominator = cache.assoc_denominator("sp", sp_factor, hp, sf)
    else:
        denominator = (sp_factor.T @ sp_factor) @ hp @ (sf.T @ sf)
    numerator = sp_factor.T @ xp_sf
    return kernel.multiply_tail(hp, numerator, denominator)


def update_hu(
    hu: np.ndarray,
    su: np.ndarray,
    sf: np.ndarray,
    xu: MatrixLike,
    cache: SweepCache | None = None,
    kernel: Kernel | None = None,
) -> np.ndarray:
    """Eq. (13): ``Hu ← Hu ∘ sqrt(SuᵀXuSf / SuᵀSuHuSfᵀSf)``."""
    kernel = kernel if kernel is not None else default_kernel()
    xu_sf = cache.xu_sf(sf) if cache is not None else _dot(xu, sf)
    if cache is not None:
        denominator = cache.assoc_denominator("su", su, hu, sf)
    else:
        denominator = (su.T @ su) @ hu @ (sf.T @ sf)
    numerator = su.T @ xu_sf
    return kernel.multiply_tail(hu, numerator, denominator)


# --------------------------------------------------------------------- #
# Tweet factor
# --------------------------------------------------------------------- #


def update_sp(
    sp_factor: np.ndarray,
    sf: np.ndarray,
    hp: np.ndarray,
    su: np.ndarray,
    xp: MatrixLike,
    xr: MatrixLike,
    style: UpdateStyle = "projector",
    cache: SweepCache | None = None,
    kernel: Kernel | None = None,
) -> np.ndarray:
    """Eq. (9) — tweet factor update.

    Attraction ``N = XpSfHpᵀ + XrᵀSu`` (how strongly tweet *i* matches
    class *j* through its words and its retweeters); the orthogonality
    projector ``Sp·Spᵀ·N`` is the repulsion.
    """
    kernel = kernel if kernel is not None else default_kernel()
    xp_sf = cache.xp_sf(sf) if cache is not None else _dot(xp, sf)
    xr_T = cache.xr_T() if cache is not None else None
    attraction = kernel.accumulate(                    # XpSfHpᵀ + XrᵀSu, n×k
        xp_sf @ hp.T, _cache_dot(cache, xr.T if xr_T is None else xr_T, su)
    )

    if style == "projector":
        denominator = _project(sp_factor, attraction)
        return kernel.projector_tail(sp_factor, attraction, denominator)

    suT_su = cache.gram("su", su) if cache is not None else su.T @ su
    hp_gram = (
        cache.hp_gram(hp, sf)
        if cache is not None
        else hp @ (sf.T @ sf) @ hp.T
    )
    delta = sp_factor.T @ attraction - hp_gram - suT_su
    delta_plus, delta_minus = nonneg_split(delta)
    numerator = attraction + sp_factor @ delta_minus
    denominator = (
        sp_factor @ hp_gram + sp_factor @ suT_su + sp_factor @ delta_plus
    )
    return sp_factor * safe_sqrt_ratio(numerator, denominator, MAX_UPDATE_RATIO)


# --------------------------------------------------------------------- #
# User factor
# --------------------------------------------------------------------- #


def update_su(
    su: np.ndarray,
    sf: np.ndarray,
    hu: np.ndarray,
    sp_factor: np.ndarray,
    xu: MatrixLike,
    xr: MatrixLike,
    gu: MatrixLike,
    du: MatrixLike,
    beta: float,
    style: UpdateStyle = "projector",
    cache: SweepCache | None = None,
    kernel: Kernel | None = None,
    gu_halo: MatrixLike | None = None,
    su_halo: np.ndarray | None = None,
) -> np.ndarray:
    """Eq. (11) — user factor update with graph regularization.

    Attraction ``N = XuSfHuᵀ + XrSp + β·GuSu`` (words, posted/retweeted
    tweets, and neighbours' sentiments pull a user toward a class);
    repulsion is the projector on the factorization part plus the degree
    term ``β·DuSu`` of the Laplacian split.

    ``gu_halo``/``su_halo`` carry a sharded solve's cut-edge remainder:
    the halo CSR block over ghost columns and the neighbours' exchanged
    ``Su`` rows aligned with those columns.  Their product folds into
    ``GuSu`` before the kernel tail, so with the halo present the graph
    attraction matches the unsharded update exactly (``Du`` must then
    hold full-graph degrees; see ``graph/partition``).
    """
    kernel = kernel if kernel is not None else default_kernel()
    xu_sf = cache.xu_sf(sf) if cache is not None else _dot(xu, sf)
    factor_attraction = kernel.accumulate(             # XuSfHuᵀ + XrSp, m×k
        xu_sf @ hu.T, _cache_dot(cache, xr, sp_factor)
    )
    gu_su = _cache_dot(cache, gu, su)
    if gu_halo is not None and su_halo is not None and gu_halo.nnz:
        gu_su = gu_su + _cache_dot(cache, gu_halo, su_halo)
    du_su = _cache_dot(cache, du, su)

    if style == "projector":
        projection = _project(su, factor_attraction)
        return kernel.graph_tail(
            su, factor_attraction, projection, gu_su, du_su, beta
        )

    spT_sp = (
        cache.gram("sp", sp_factor)
        if cache is not None
        else sp_factor.T @ sp_factor
    )
    hu_gram = (
        cache.hu_gram(hu, sf)
        if cache is not None
        else hu @ (sf.T @ sf) @ hu.T
    )
    delta = (
        su.T @ factor_attraction
        - hu_gram
        - spT_sp
        - beta * (su.T @ (du_su - gu_su))
    )
    delta_plus, delta_minus = nonneg_split(delta)
    numerator = factor_attraction + beta * gu_su + su @ delta_minus
    denominator = (
        su @ hu_gram + su @ spT_sp + beta * du_su + su @ delta_plus
    )
    return su * safe_sqrt_ratio(numerator, denominator, MAX_UPDATE_RATIO)


# --------------------------------------------------------------------- #
# Feature factor
# --------------------------------------------------------------------- #


def sf_sweep_contribution(
    sp_factor: np.ndarray,
    hp: np.ndarray,
    su: np.ndarray,
    hu: np.ndarray,
    xp: MatrixLike,
    xu: MatrixLike,
    xp_T: MatrixLike | None = None,
    xu_T: MatrixLike | None = None,
    spmm: object | None = None,
) -> np.ndarray:
    """One block's additive attraction to the ``Sf`` update (Eq. 7).

    The numerator term ``XuᵀSuHu + XpᵀSpHp`` sums over user and tweet
    *rows*, so a user-partitioned model computes it per shard and adds
    the ``l×k`` pieces — the separable half of the sharded ``Sf`` sweep.
    The unsharded :func:`update_sf` evaluates exactly this expression,
    so a single-block contribution reproduces it bit for bit.

    ``xp_T``/``xu_T`` optionally supply CSR-materialized transposes
    (the sharded solver precomputes them per snapshot); sparse products
    through them accumulate in the same order as through the lazy
    ``.T`` views, so the result is unchanged bitwise.  ``spmm``
    optionally supplies an :class:`~repro.core.spmm.SpmmEngine` for the
    two transpose products (float64 bit-identical, speed-only).
    """
    dot = _dot if spmm is None else spmm.matmul
    attraction = dot(xu.T if xu_T is None else xu_T, su) @ hu      # l×k
    attraction += dot(xp.T if xp_T is None else xp_T, sp_factor) @ hp
    return attraction


def apply_sf_update(
    sf: np.ndarray,
    factor_attraction: np.ndarray,
    sf_prior: np.ndarray | None,
    alpha: float,
    kernel: Kernel | None = None,
) -> np.ndarray:
    """Projector-style ``Sf`` step from a reduced attraction.

    The non-separable half of the sharded sweep: the orthogonality
    projector ``Sf·Sfᵀ·N`` and the α prior act on the *global* ``Sf``
    once per sweep, after the per-shard attractions have been summed.
    """
    kernel = kernel if kernel is not None else default_kernel()
    projection = _project(sf, factor_attraction)
    if sf_prior is None or alpha == 0.0:
        return kernel.projector_tail(sf, factor_attraction, projection)
    return kernel.prior_tail(sf, factor_attraction, projection, sf_prior, alpha)


def update_sf(
    sf: np.ndarray,
    sp_factor: np.ndarray,
    hp: np.ndarray,
    su: np.ndarray,
    hu: np.ndarray,
    xp: MatrixLike,
    xu: MatrixLike,
    sf_prior: np.ndarray | None,
    alpha: float,
    style: UpdateStyle = "projector",
    cache: SweepCache | None = None,
    kernel: Kernel | None = None,
) -> np.ndarray:
    """Eq. (7) offline / Eq. (23) online — feature factor update.

    ``sf_prior`` is ``Sf0`` (offline) or the decayed aggregate ``Sfw(t)``
    (online); the two rules are otherwise identical.  The α prior enters
    the numerator as ``α·Sf0`` (pull toward the lexicon) and the
    denominator as ``α·Sf``.
    """
    factor_attraction = sf_sweep_contribution(
        sp_factor,
        hp,
        su,
        hu,
        xp,
        xu,
        xp_T=cache.xp_T() if cache is not None else None,
        xu_T=cache.xu_T() if cache is not None else None,
        spmm=cache.spmm if cache is not None else None,
    )

    if style == "projector":
        return apply_sf_update(sf, factor_attraction, sf_prior, alpha, kernel)

    if sf_prior is None or alpha == 0.0:
        prior_numerator = 0.0
        prior_denominator = 0.0
    else:
        prior_numerator = alpha * sf_prior
        prior_denominator = alpha * sf

    suT_su = cache.gram("su", su) if cache is not None else su.T @ su
    spT_sp = (
        cache.gram("sp", sp_factor)
        if cache is not None
        else sp_factor.T @ sp_factor
    )
    hu_gram = hu.T @ suT_su @ hu
    hp_gram = hp.T @ spT_sp @ hp
    prior_delta = (
        np.zeros((sf.shape[1], sf.shape[1]), dtype=sf.dtype)
        if sf_prior is None or alpha == 0.0
        else alpha * (sf.T @ (sf - sf_prior))
    )
    delta = (
        sf.T @ factor_attraction - hu_gram - hp_gram - prior_delta
    )
    delta_plus, delta_minus = nonneg_split(delta)
    numerator = factor_attraction + prior_numerator + sf @ delta_minus
    denominator = (
        sf @ hu_gram + sf @ hp_gram + prior_denominator + sf @ delta_plus
    )
    return sf * safe_sqrt_ratio(numerator, denominator, MAX_UPDATE_RATIO)


# --------------------------------------------------------------------- #
# Online user factor (Eqs. 24 + 26)
# --------------------------------------------------------------------- #


def update_su_online(
    su: np.ndarray,
    sf: np.ndarray,
    hu: np.ndarray,
    sp_factor: np.ndarray,
    xu: MatrixLike,
    xr: MatrixLike,
    gu: MatrixLike,
    du: MatrixLike,
    beta: float,
    gamma: float,
    su_prior: np.ndarray | None,
    evolving_rows: np.ndarray | None,
    style: UpdateStyle = "projector",
    cache: SweepCache | None = None,
    kernel: Kernel | None = None,
    gu_halo: MatrixLike | None = None,
    su_halo: np.ndarray | None = None,
) -> np.ndarray:
    """Eqs. (24)+(26) — online user update with row-wise temporal terms.

    New-user rows follow Eq. (24) (identical to the offline Eq. (11));
    evolving-user rows follow Eq. (26), which adds ``γ·Suw`` to the
    numerator and ``γ·Su`` to the denominator, pulling those rows toward
    their decayed history.

    Parameters
    ----------
    su_prior:
        ``Suw(t)`` rows for evolving users, aligned with ``evolving_rows``.
    evolving_rows:
        Row indices of evolving users within ``su``.
    gu_halo, su_halo:
        Sharded cut-edge remainder, folded into ``GuSu`` exactly as in
        :func:`update_su`.
    """
    kernel = kernel if kernel is not None else default_kernel()
    xu_sf = cache.xu_sf(sf) if cache is not None else _dot(xu, sf)
    factor_attraction = kernel.accumulate(             # XuSfHuᵀ + XrSp, m×k
        xu_sf @ hu.T, _cache_dot(cache, xr, sp_factor)
    )
    gu_su = _cache_dot(cache, gu, su)
    if gu_halo is not None and su_halo is not None and gu_halo.nnz:
        gu_su = gu_su + _cache_dot(cache, gu_halo, su_halo)
    du_su = _cache_dot(cache, du, su)

    has_temporal = (
        su_prior is not None
        and evolving_rows is not None
        and evolving_rows.size > 0
        and gamma > 0.0
    )

    if style == "projector":
        projection = _project(su, factor_attraction)
        if not has_temporal:
            return kernel.graph_tail(
                su, factor_attraction, projection, gu_su, du_su, beta
            )
        numerator, denominator = kernel.graph_terms(
            factor_attraction, projection, gu_su, du_su, beta
        )
        numerator[evolving_rows] += gamma * su_prior
        denominator[evolving_rows] += gamma * su[evolving_rows]
        return kernel.multiply_tail(su, numerator, denominator)

    spT_sp = (
        cache.gram("sp", sp_factor)
        if cache is not None
        else sp_factor.T @ sp_factor
    )
    hu_gram = (
        cache.hu_gram(hu, sf)
        if cache is not None
        else hu @ (sf.T @ sf) @ hu.T
    )
    temporal_delta = np.zeros((su.shape[1], su.shape[1]), dtype=su.dtype)
    if has_temporal:
        su_evolving = su[evolving_rows]
        temporal_delta = gamma * (su_evolving.T @ (su_evolving - su_prior))
    delta = (
        su.T @ factor_attraction
        - hu_gram
        - spT_sp
        - beta * (su.T @ (du_su - gu_su))
        - temporal_delta
    )
    delta_plus, delta_minus = nonneg_split(delta)
    numerator = factor_attraction + beta * gu_su + su @ delta_minus
    denominator = (
        su @ hu_gram + su @ spT_sp + beta * du_su + su @ delta_plus
    )
    if has_temporal:
        numerator[evolving_rows] += gamma * su_prior
        denominator[evolving_rows] += gamma * su[evolving_rows]
    return su * safe_sqrt_ratio(numerator, denominator, MAX_UPDATE_RATIO)
