"""Pluggable regularizers — the paper's proposed unified framework.

Section 7 sketches future work: *"a unified tripartite graph co-clustering
framework, with a set of optional regularizations which include graph
regularization, sparsity regularization, diversity regularization,
temporal regularization, and guided regularization (semi-supervised
regularization)"*.  This module implements that framework.

Every regularizer targets one factor (``"sf"``, ``"sp"`` or ``"su"``) and
contributes

- an **objective term** (added to the total loss), and
- **update terms** ``(numerator_add, denominator_add)`` folded into the
  target factor's multiplicative update, derived from the
  negative/positive parts of the term's gradient so the combined update
  keeps the standard fixed-point property.

The :class:`~repro.core.unified.UnifiedTriClustering` solver consumes any
combination of these; the five named regularizations of the paper map to:

==============================  ==========================================
paper's name                    class
==============================  ==========================================
graph regularization            :class:`GraphSmoothness`
sparsity regularization         :class:`Sparsity`
diversity regularization        :class:`Diversity`
temporal regularization         :class:`PriorCloseness` (with a decayed
                                aggregate as the prior, optionally
                                row-masked)
guided (semi-supervised)        :class:`GuidedLabels`
lexicon prior (Eq. 5)           :class:`PriorCloseness` on ``sf``
==============================  ==========================================
"""

from __future__ import annotations

import abc

import numpy as np
import scipy.sparse as sp

from repro.core.state import FactorSet

TARGETS = ("sf", "sp", "su")


class Regularizer(abc.ABC):
    """One additive regularization term on a single factor."""

    def __init__(self, target: str, weight: float) -> None:
        if target not in TARGETS:
            raise ValueError(f"target must be one of {TARGETS}, got {target!r}")
        if weight < 0:
            raise ValueError(f"weight must be >= 0, got {weight}")
        self.target = target
        self.weight = weight

    def factor(self, factors: FactorSet) -> np.ndarray:
        """The matrix this regularizer acts on."""
        return getattr(factors, self.target)

    @abc.abstractmethod
    def objective(self, factors: FactorSet) -> float:
        """The term's value (≥ 0) at the current factors."""

    @abc.abstractmethod
    def update_terms(
        self, factors: FactorSet
    ) -> tuple[np.ndarray | float, np.ndarray | float]:
        """``(numerator_add, denominator_add)`` for the target's update."""


class PriorCloseness(Regularizer):
    """``w·||S − P||²`` — lexicon (Eq. 5) and temporal (Eq. 19) closeness.

    ``rows`` restricts the term to a row subset (the online framework's
    evolving-user block ``Su(d,e)``); ``prior`` is then indexed by those
    rows.
    """

    def __init__(
        self,
        target: str,
        prior: np.ndarray,
        weight: float,
        rows: np.ndarray | None = None,
    ) -> None:
        super().__init__(target, weight)
        self.prior = np.asarray(prior, dtype=np.float64)
        if np.any(self.prior < 0):
            raise ValueError("prior must be non-negative")
        self.rows = None if rows is None else np.asarray(rows, dtype=np.int64)
        if self.rows is not None and self.prior.shape[0] != self.rows.size:
            raise ValueError(
                f"prior has {self.prior.shape[0]} rows for "
                f"{self.rows.size} masked rows"
            )

    def objective(self, factors: FactorSet) -> float:
        matrix = self.factor(factors)
        if self.rows is not None:
            matrix = matrix[self.rows]
        diff = matrix - self.prior
        return self.weight * float(np.sum(diff * diff))

    def update_terms(self, factors: FactorSet):
        matrix = self.factor(factors)
        numerator = np.zeros_like(matrix)
        denominator = np.zeros_like(matrix)
        if self.rows is None:
            numerator += self.weight * self.prior
            denominator += self.weight * matrix
        else:
            numerator[self.rows] += self.weight * self.prior
            denominator[self.rows] += self.weight * matrix[self.rows]
        return numerator, denominator


class GraphSmoothness(Regularizer):
    """``w·tr(SᵀLS)`` — Eq. (6) generalized to any factor.

    Splits the Laplacian into ``D − G``: the adjacency part attracts
    (numerator), the degree part repels (denominator) — the provably
    monotone GNMF treatment.
    """

    def __init__(
        self, target: str, adjacency: sp.spmatrix, weight: float
    ) -> None:
        super().__init__(target, weight)
        adjacency = sp.csr_matrix(adjacency)
        if adjacency.shape[0] != adjacency.shape[1]:
            raise ValueError("adjacency must be square")
        if (abs(adjacency - adjacency.T)).sum() > 1e-9:
            raise ValueError("adjacency must be symmetric")
        self.adjacency = adjacency
        degrees = np.asarray(adjacency.sum(axis=1)).ravel()
        self.degree = sp.diags(degrees, format="csr")

    def objective(self, factors: FactorSet) -> float:
        matrix = self.factor(factors)
        if matrix.shape[0] != self.adjacency.shape[0]:
            raise ValueError(
                f"graph has {self.adjacency.shape[0]} nodes but factor "
                f"{self.target} has {matrix.shape[0]} rows"
            )
        laplacian_product = self.degree @ matrix - self.adjacency @ matrix
        return self.weight * max(float(np.sum(matrix * laplacian_product)), 0.0)

    def update_terms(self, factors: FactorSet):
        matrix = self.factor(factors)
        numerator = self.weight * np.asarray(self.adjacency @ matrix)
        denominator = self.weight * np.asarray(self.degree @ matrix)
        return numerator, denominator


class Sparsity(Regularizer):
    """``w·Σᵢⱼ S[i,j]`` — L1 shrinkage pushing soft memberships to zero.

    The gradient is the constant ``w``; it lands entirely in the
    denominator, uniformly shrinking every entry per sweep.
    """

    def objective(self, factors: FactorSet) -> float:
        return self.weight * float(self.factor(factors).sum())

    def update_terms(self, factors: FactorSet):
        matrix = self.factor(factors)
        return np.zeros_like(matrix), np.full_like(matrix, self.weight)


class Diversity(Regularizer):
    """``w·Σ_{j≠j'} (SᵀS)[j,j']`` — penalizes correlated cluster columns.

    Encourages clusters to claim disjoint support (the role the hard
    orthogonality constraint plays in Eq. 1, in soft form).  The gradient
    ``2w·S(𝟙 − I)`` is non-negative and repulsive (denominator only).
    """

    def objective(self, factors: FactorSet) -> float:
        matrix = self.factor(factors)
        gram = matrix.T @ matrix
        return self.weight * float(gram.sum() - np.trace(gram))

    def update_terms(self, factors: FactorSet):
        matrix = self.factor(factors)
        k = matrix.shape[1]
        coupling = np.ones((k, k)) - np.eye(k)
        return np.zeros_like(matrix), 2.0 * self.weight * (matrix @ coupling)


class GuidedLabels(Regularizer):
    """``w·Σ_{i∈L} ||S[i] − yᵢ||²`` — semi-supervised guidance.

    Rows listed in ``rows`` are pulled toward the one-hot encoding of
    their known label — the paper's "performance can be improved by
    including high quality labeled data" made concrete.
    """

    def __init__(
        self,
        target: str,
        rows: np.ndarray,
        labels: np.ndarray,
        num_classes: int,
        weight: float,
    ) -> None:
        super().__init__(target, weight)
        self.rows = np.asarray(rows, dtype=np.int64)
        labels = np.asarray(labels, dtype=np.int64)
        if labels.shape[0] != self.rows.size:
            raise ValueError(
                f"{labels.shape[0]} labels for {self.rows.size} rows"
            )
        if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
            raise ValueError("labels must lie in [0, num_classes)")
        self.onehot = np.zeros((self.rows.size, num_classes))
        self.onehot[np.arange(self.rows.size), labels] = 1.0

    def objective(self, factors: FactorSet) -> float:
        matrix = self.factor(factors)[self.rows]
        diff = matrix - self.onehot
        return self.weight * float(np.sum(diff * diff))

    def update_terms(self, factors: FactorSet):
        matrix = self.factor(factors)
        numerator = np.zeros_like(matrix)
        denominator = np.zeros_like(matrix)
        numerator[self.rows] += self.weight * self.onehot
        denominator[self.rows] += self.weight * matrix[self.rows]
        return numerator, denominator
