"""Online tri-clustering — Algorithm 2.

Processes temporal snapshots one at a time, warm-starting from decayed
previous results instead of re-factorizing history:

- ``Sfw(t) = Σ_{i=1..w-1} τⁱ·Sf(t−i)`` regularizes and initializes the
  feature factor (Observation 1: word sentiment evolves slowly).
- ``Suw(t)`` does the same for *evolving* users (Observation 2: most users
  rarely change their mind quickly); *new* users are initialized randomly
  and follow the offline-style update Eq. (24); *disappeared* users keep
  their carried-forward sentiment.

The solver is matrix-level: callers hand it one
:class:`~repro.graph.tripartite.TripartiteGraph` per snapshot, built
against a **shared vocabulary** so that feature rows align across time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.convergence import ConvergenceHistory
from repro.core.initialization import warm_started_factors
from repro.core.kernels import resolve_dtype, resolve_kernel, validate_kernel
from repro.core.objective import (
    ObjectiveStatics,
    ObjectiveWeights,
    compute_objective,
)
from repro.core.spmm import (
    resolve_spmm,
    validate_spmm,
    validate_spmm_threads,
)
from repro.core.state import FactorSet
from repro.core.sweepcache import SweepCache
from repro.core.updates import (
    update_hp,
    update_hu,
    update_sf,
    update_sp,
    update_su_online,
)
from repro.graph.tripartite import TripartiteGraph
from repro.utils.logging import get_logger
from repro.utils.matrices import hard_assignments
from repro.utils.rng import RandomState, spawn_rng

logger = get_logger("core.online")


@dataclass
class OnlineStepResult:
    """Output of one ``partial_fit`` call (one snapshot)."""

    snapshot_index: int
    factors: FactorSet
    history: ConvergenceHistory
    converged: bool
    iterations: int
    user_ids: list[int]
    new_user_rows: np.ndarray
    evolving_user_rows: np.ndarray

    def tweet_sentiments(self) -> np.ndarray:
        return self.factors.tweet_clusters()

    def user_sentiments(self) -> np.ndarray:
        return self.factors.user_clusters()


class OnlineTriClustering:
    """Algorithm 2: streaming tri-clustering with temporal regularization.

    Parameters
    ----------
    alpha:
        Temporal feature-smoothness weight (paper's online best: 0.9).
    beta:
        User-graph smoothness weight (0.8, as offline).
    gamma:
        Evolving-user temporal weight (paper's best: 0.2).
    tau:
        Exponential decay of past results within the window (0.9).
    window:
        Time-window size ``w``; ``w=2`` (the paper's setting) uses only
        the previous snapshot.
    state_smoothing:
        Weight of the *previous* carried estimate when blending a user's
        new snapshot estimate into the global per-user state (evaluation
        readout and fallback prior).  0 reproduces plain overwriting.
    kernel / dtype:
        Sweep-kernel implementation and factor dtype; see
        :class:`~repro.core.offline.OfflineTriClustering` and
        :mod:`repro.core.kernels`.
    spmm / spmm_threads:
        Sparse·dense product engine and its thread budget; see
        :class:`~repro.core.offline.OfflineTriClustering` and
        :mod:`repro.core.spmm` (float64 bit-identical, speed-only).
    objective_every:
        Evaluate the objective every this many sweeps (default 1 =
        every sweep); the final sweep is always evaluated.  See
        :class:`~repro.core.offline.OfflineTriClustering`.
    """

    def __init__(
        self,
        num_classes: int = 3,
        alpha: float = 0.9,
        beta: float = 0.8,
        gamma: float = 0.2,
        tau: float = 0.9,
        window: int = 2,
        max_iterations: int = 100,
        tolerance: float = 1e-5,
        patience: int = 3,
        seed: RandomState = None,
        track_history: bool = False,
        update_style: str = "projector",
        state_smoothing: float = 0.8,
        kernel: object = "auto",
        dtype: str = "float64",
        spmm: object = "auto",
        spmm_threads: int | None = None,
        objective_every: int = 1,
    ) -> None:
        if num_classes < 2:
            raise ValueError(f"num_classes must be >= 2, got {num_classes}")
        if not isinstance(objective_every, int) or objective_every < 1:
            raise ValueError(
                f"objective_every must be an int >= 1, got {objective_every!r}"
            )
        if not (0.0 < tau <= 1.0):
            raise ValueError(f"tau must be in (0, 1], got {tau}")
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        if not (0.0 <= state_smoothing < 1.0):
            raise ValueError(
                f"state_smoothing must be in [0, 1), got {state_smoothing}"
            )
        self.state_smoothing = state_smoothing
        self.num_classes = num_classes
        self.weights = ObjectiveWeights(alpha=alpha, beta=beta, gamma=gamma)
        self.tau = tau
        self.window = window
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.patience = patience
        self.track_history = track_history
        if update_style not in ("projector", "lagrangian"):
            raise ValueError(f"unknown update_style: {update_style!r}")
        self.update_style = update_style
        validate_kernel(kernel)
        self.kernel = kernel
        self.dtype = dtype
        self._np_dtype = resolve_dtype(dtype)
        validate_spmm(spmm)
        validate_spmm_threads(spmm_threads)
        self.spmm = spmm
        self.spmm_threads = spmm_threads
        self.objective_every = objective_every
        self._rng = spawn_rng(seed)

        self._sf_history: deque[np.ndarray] = deque(maxlen=window - 1)
        self._su_history: deque[dict[int, np.ndarray]] = deque(maxlen=window - 1)
        self._user_state: dict[int, np.ndarray] = {}
        self._seen_users: set[int] = set()
        self._steps = 0
        self._vocabulary_ref: object | None = None

    # ------------------------------------------------------------------ #
    # Temporal aggregates
    # ------------------------------------------------------------------ #

    def feature_prior(self, num_features: int) -> np.ndarray | None:
        """``Sfw(t) = Σ_{i=1..w-1} τⁱ·Sf(t−i)``; ``None`` before any step.

        The feature dimension may *grow* between snapshots (the streaming
        engine's vocabulary is append-only, so feature row ``i`` always
        denotes the same word): past factors are zero-padded and words
        with no history get an all-zero prior row.  Shrinking would
        re-map rows and is rejected.
        """
        if not self._sf_history:
            return None
        aggregate = np.zeros((num_features, self.num_classes))
        # history[-1] is Sf(t-1), history[-2] is Sf(t-2), ...
        for lag, sf_past in enumerate(reversed(self._sf_history), start=1):
            if sf_past.shape[0] > num_features:
                raise ValueError(
                    "feature dimension shrank across snapshots "
                    f"({sf_past.shape[0]} -> {num_features}); online mode "
                    "requires an append-only shared vocabulary"
                )
            aggregate[: sf_past.shape[0]] += (self.tau ** lag) * sf_past
        return aggregate

    def user_prior(self, user_id: int) -> np.ndarray | None:
        """``Suw(t)`` row for one user, or ``None`` without history.

        Falls back to the decayed carried-forward estimate when the user
        was seen before the current window (still an "evolving" user).
        """
        aggregate = np.zeros(self.num_classes)
        found = False
        for lag, su_past in enumerate(reversed(self._su_history), start=1):
            row = su_past.get(user_id)
            if row is not None:
                aggregate += (self.tau ** lag) * row
                found = True
        if found:
            return aggregate
        carried = self._user_state.get(user_id)
        if carried is not None:
            return self.tau * carried
        return None

    def _check_vocabulary(self, graph: TripartiteGraph) -> None:
        """Fail fast when feature rows cannot align across snapshots.

        A *grown* feature dimension is only meaningful when the snapshot
        was vectorized against the same append-only vocabulary as the
        previous ones (row ``i`` keeps denoting the same word).  A larger
        dimension coming from an independently fitted vocabulary would
        silently add decayed history rows onto unrelated words, so it is
        rejected; equal dimensions keep the legacy shared-vectorizer
        contract (shrinks are rejected in :meth:`feature_prior`).
        """
        vocabulary = graph.vectorizer.vocabulary
        if (
            self._sf_history
            and graph.num_features > self._sf_history[-1].shape[0]
            and vocabulary is not self._vocabulary_ref
        ):
            raise ValueError(
                "feature dimension grew but the snapshot was built against "
                "a different vocabulary object; online mode requires an "
                "append-only shared vocabulary across snapshots"
            )
        self._vocabulary_ref = vocabulary

    # ------------------------------------------------------------------ #
    # Streaming API
    # ------------------------------------------------------------------ #

    def partial_fit(self, graph: TripartiteGraph) -> OnlineStepResult:
        """Process one snapshot; updates the internal temporal state."""
        self._check_vocabulary(graph)
        corpus = graph.corpus
        user_ids = corpus.user_ids
        current = set(user_ids)
        new_rows = np.array(
            [i for i, uid in enumerate(user_ids) if uid not in self._seen_users],
            dtype=np.int64,
        )
        evolving_rows = np.array(
            [i for i, uid in enumerate(user_ids) if uid in self._seen_users],
            dtype=np.int64,
        )

        # --- warm starts (Algorithm 2, lines 1-2) ---
        sfw = self.feature_prior(graph.num_features)
        sf_init = sfw if sfw is not None else graph.sf0
        if sf_init is None:
            sf_init = self._rng.uniform(
                0.01, 1.0, size=(graph.num_features, self.num_classes)
            )
        elif sfw is not None and graph.sf0 is not None:
            # Words that appeared after the last snapshot have an all-zero
            # history row; seed them from the lexicon prior instead so the
            # warm start carries class semantics for them too.
            fresh_rows = ~sfw.any(axis=1)
            if fresh_rows.any():
                sf_init = sfw.copy()
                sf_init[fresh_rows] = graph.sf0[fresh_rows]

        su_prior_rows: list[np.ndarray] = []
        su_init = self._rng.uniform(
            0.01, 1.0, size=(graph.num_users, self.num_classes)
        )
        kept_evolving: list[int] = []
        for row in evolving_rows:
            prior = self.user_prior(user_ids[int(row)])
            if prior is not None:
                su_init[int(row)] = np.maximum(prior, 1e-6)
                su_prior_rows.append(prior)
                kept_evolving.append(int(row))
        evolving_rows = np.array(kept_evolving, dtype=np.int64)
        su_prior = (
            np.vstack(su_prior_rows) if su_prior_rows else None
        )

        factors = warm_started_factors(
            graph.num_tweets,
            graph.num_users,
            sf_init,
            su_init=su_init,
            seed=self._rng,
            dtype=self._np_dtype,
        )

        result = self._optimize(
            graph, factors, sfw, su_prior, evolving_rows
        )

        # --- commit temporal state ---
        self._sf_history.append(result.factors.sf.copy())
        su_snapshot = {
            uid: result.factors.su[i].copy() for i, uid in enumerate(user_ids)
        }
        self._su_history.append(su_snapshot)
        # The carried per-user state is an exponentially smoothed average of
        # row-normalized snapshot estimates.  A single snapshot sees few
        # tweets per user, so overwriting would make the global user
        # readout as noisy as the mini-batch baseline; smoothing implements
        # Observation 2 (user sentiment is stable over short horizons).
        for uid, row in su_snapshot.items():
            total = row.sum()
            normalized = row / total if total > 0 else row
            previous = self._user_state.get(uid)
            if previous is None:
                self._user_state[uid] = normalized
            else:
                self._user_state[uid] = (
                    self.state_smoothing * previous
                    + (1.0 - self.state_smoothing) * normalized
                )
        self._seen_users |= current
        self._steps += 1

        return OnlineStepResult(
            snapshot_index=self._steps - 1,
            factors=result.factors,
            history=result.history,
            converged=result.converged,
            iterations=result.iterations,
            user_ids=user_ids,
            new_user_rows=new_rows,
            evolving_user_rows=evolving_rows,
        )

    # ------------------------------------------------------------------ #

    @dataclass
    class _OptimizeOutput:
        factors: FactorSet
        history: ConvergenceHistory
        converged: bool
        iterations: int

    def _optimize(
        self,
        graph: TripartiteGraph,
        factors: FactorSet,
        sfw: np.ndarray | None,
        su_prior: np.ndarray | None,
        evolving_rows: np.ndarray,
    ) -> "_OptimizeOutput":
        """Algorithm 2 inner loop (lines 3-8)."""
        kernel = resolve_kernel(self.kernel, threads=self.spmm_threads)
        spmm_engine = resolve_spmm(self.spmm, self.spmm_threads)
        graph = graph.astype(self._np_dtype)  # no-op in the float64 default
        factors = factors.astype(self._np_dtype)
        if sfw is not None:
            sfw = sfw.astype(self._np_dtype, copy=False)
        if su_prior is not None:
            su_prior = su_prior.astype(self._np_dtype, copy=False)
        xp, xu, xr = graph.xp, graph.xu, graph.xr
        gu = graph.user_graph.adjacency
        du = graph.user_graph.degree_matrix
        laplacian = graph.user_graph.laplacian
        sf_prior = sfw if sfw is not None else graph.sf0

        history = ConvergenceHistory()
        converged = False
        iterations_run = 0
        # Same per-fit constants bundle as the offline/sharded paths:
        # evaluations through it are bit-identical, just cheaper.  The
        # sweep cache shares its CSR transposes (and adds ``Xrᵀ``).
        statics = ObjectiveStatics.from_matrices(xp, xu, xr)
        cache = SweepCache(
            xp, xu, xr, xp_T=statics.xp_T, xu_T=statics.xu_T,
            spmm=spmm_engine,
        )
        for iteration in range(self.max_iterations):
            factors.sf = update_sf(
                factors.sf,
                factors.sp,
                factors.hp,
                factors.su,
                factors.hu,
                xp,
                xu,
                sf_prior,
                self.weights.alpha,
                style=self.update_style,
                cache=cache,
                kernel=kernel,
            )
            factors.sp = update_sp(
                factors.sp, factors.sf, factors.hp, factors.su, xp, xr,
                style=self.update_style, cache=cache, kernel=kernel,
            )
            factors.hp = update_hp(
                factors.hp, factors.sp, factors.sf, xp, cache=cache,
                kernel=kernel,
            )
            factors.hu = update_hu(
                factors.hu, factors.su, factors.sf, xu, cache=cache,
                kernel=kernel,
            )
            factors.su = update_su_online(
                factors.su,
                factors.sf,
                factors.hu,
                factors.sp,
                xu,
                xr,
                gu,
                du,
                self.weights.beta,
                self.weights.gamma,
                su_prior,
                evolving_rows,
                style=self.update_style,
                cache=cache,
                kernel=kernel,
            )
            iterations_run = iteration + 1

            if (
                (self.track_history or self.tolerance > 0)
                and iterations_run % self.objective_every == 0
            ):
                objective = compute_objective(
                    factors,
                    xp,
                    xu,
                    xr,
                    laplacian,
                    self.weights,
                    sf_prior=sf_prior,
                    su_prior=su_prior,
                    su_prior_rows=evolving_rows if su_prior is not None else None,
                    statics=statics,
                    spmm=spmm_engine,
                )
                history.append(objective)
                if history.converged(self.tolerance, window=self.patience):
                    converged = True
                    break

        if (
            (self.track_history or self.tolerance > 0)
            and iterations_run % self.objective_every != 0
        ):
            # objective_every > 1 skipped the final sweep: record it so
            # the history always ends at the returned factors.
            history.append(
                compute_objective(
                    factors,
                    xp,
                    xu,
                    xr,
                    laplacian,
                    self.weights,
                    sf_prior=sf_prior,
                    su_prior=su_prior,
                    su_prior_rows=evolving_rows if su_prior is not None else None,
                    statics=statics,
                    spmm=spmm_engine,
                )
            )
            if history.converged(self.tolerance, window=self.patience):
                converged = True
        if not history.records:
            history.append(
                compute_objective(
                    factors,
                    xp,
                    xu,
                    xr,
                    laplacian,
                    self.weights,
                    sf_prior=sf_prior,
                    su_prior=su_prior,
                    su_prior_rows=evolving_rows if su_prior is not None else None,
                    statics=statics,
                    spmm=spmm_engine,
                )
            )
        return self._OptimizeOutput(
            factors=factors,
            history=history,
            converged=converged,
            iterations=iterations_run,
        )

    # ------------------------------------------------------------------ #
    # Global readouts
    # ------------------------------------------------------------------ #

    @property
    def current_feature_factor(self) -> np.ndarray | None:
        """The most recent ``Sf(t)`` (None before the first snapshot).

        Useful with
        :func:`repro.core.labeling.lexicon_column_alignment` to map
        cluster columns onto sentiment classes without ground truth.
        """
        if not self._sf_history:
            return None
        return self._sf_history[-1].copy()

    @property
    def seen_users(self) -> set[int]:
        """All user ids observed in any processed snapshot (a copy)."""
        return set(self._seen_users)

    @property
    def steps(self) -> int:
        """Number of snapshots processed."""
        return self._steps

    def user_sentiment_rows(self) -> dict[int, np.ndarray]:
        """Latest sentiment vector per user (disappeared users included)."""
        return {uid: row.copy() for uid, row in self._user_state.items()}

    def user_sentiment_labels(self) -> dict[int, int]:
        """Latest hard sentiment class per user ever seen."""
        if not self._user_state:
            return {}
        uids = sorted(self._user_state)
        matrix = np.vstack([self._user_state[uid] for uid in uids])
        labels = hard_assignments(matrix)
        return {uid: int(label) for uid, label in zip(uids, labels)}
