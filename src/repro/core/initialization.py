"""Factor initialization strategies.

Algorithm 1 initializes all factors non-negatively at random; the online
Algorithm 2 warm-starts ``Sf(t)`` and evolving-user rows of ``Su(t)`` from
decayed previous results (line 1) and randomizes the rest.  When a lexicon
prior ``Sf0`` is available, seeding ``Sf`` from it anchors cluster columns
to sentiment classes from the first iteration, which is what makes the
unsupervised clusters interpretable as pos/neg/neu.
"""

from __future__ import annotations

import numpy as np

from repro.core.state import FactorSet
from repro.utils.rng import RandomState, spawn_rng

#: Floor applied to warm-started factors.  Multiplicative updates cannot
#: move an exactly-zero entry, so warm starts must stay strictly positive.
_WARM_FLOOR = 1e-6


def random_factors(
    num_tweets: int,
    num_users: int,
    num_features: int,
    num_classes: int,
    seed: RandomState = None,
    dtype: np.dtype | None = None,
) -> FactorSet:
    """Uniform-random strictly positive factors (Algorithm 1, line 1).

    Draws always happen in float64 so the RNG stream — and therefore the
    sampled values — do not depend on the solver dtype; ``dtype`` (the
    opt-in float32 mode) only casts the result.  A float32 run thus
    starts from the rounded float64 initialization, which is what the
    float32-tracks-float64 tolerance tests rely on.
    """
    rng = spawn_rng(seed)

    def uniform(rows: int, cols: int) -> np.ndarray:
        return rng.uniform(0.01, 1.0, size=(rows, cols))

    factors = FactorSet(
        sf=uniform(num_features, num_classes),
        sp=uniform(num_tweets, num_classes),
        su=uniform(num_users, num_classes),
        hp=uniform(num_classes, num_classes),
        hu=uniform(num_classes, num_classes),
    )
    return factors if dtype is None else factors.astype(dtype)


def _near_identity(num_classes: int, rng: np.random.Generator) -> np.ndarray:
    """Identity plus small positive noise.

    Seeding the association matrices near the identity anchors the
    *column semantics* of ``Sp``/``Su`` to those of ``Sf``: since ``Hp``
    and ``Hu`` sit between the entity factors and the feature factor,
    a random ``H`` lets the solver absorb an arbitrary column
    permutation, after which cluster ids carry no class identity.  With
    ``Sf`` seeded from the lexicon and ``H ≈ I``, cluster column ``j``
    *is* sentiment class ``j`` across all three factors.
    """
    return np.eye(num_classes) + 0.05 * rng.uniform(
        size=(num_classes, num_classes)
    )


def lexicon_seeded_factors(
    num_tweets: int,
    num_users: int,
    sf0: np.ndarray,
    seed: RandomState = None,
    jitter: float = 0.01,
    dtype: np.dtype | None = None,
) -> FactorSet:
    """Random factors with ``Sf`` seeded from the lexicon prior ``Sf0``.

    The association matrices start near the identity (see
    :func:`_near_identity`) so cluster columns inherit the prior's class
    semantics.  A small positive ``jitter`` keeps every ``Sf`` entry
    strictly positive so the multiplicative updates can move it in
    either direction.
    """
    rng = spawn_rng(seed)
    num_features, num_classes = sf0.shape
    factors = random_factors(
        num_tweets, num_users, num_features, num_classes, seed=rng
    )
    factors.sf = np.maximum(sf0, 0.0) + jitter * rng.uniform(
        0.0, 1.0, size=sf0.shape
    )
    factors.hp = _near_identity(num_classes, rng)
    factors.hu = _near_identity(num_classes, rng)
    return factors if dtype is None else factors.astype(dtype)


def warm_started_factors(
    num_tweets: int,
    num_users: int,
    sf_init: np.ndarray,
    su_init: np.ndarray | None = None,
    seed: RandomState = None,
    dtype: np.dtype | None = None,
) -> FactorSet:
    """Online warm start (Algorithm 2, lines 1-2).

    ``Sf(t)`` starts from the decayed aggregate ``Sfw(t)``; user rows with
    history start from ``Suw(t)`` (callers pass ``su_init`` with random
    rows already in place for new users); ``Sp, Hp, Hu`` are random.
    """
    rng = spawn_rng(seed)
    num_classes = sf_init.shape[1]
    factors = random_factors(
        num_tweets, num_users, sf_init.shape[0], num_classes, seed=rng
    )
    factors.sf = np.maximum(sf_init, _WARM_FLOOR)
    factors.hp = _near_identity(num_classes, rng)
    factors.hu = _near_identity(num_classes, rng)
    if su_init is not None:
        if su_init.shape != (num_users, num_classes):
            raise ValueError(
                f"su_init shape {su_init.shape} != ({num_users}, {num_classes})"
            )
        factors.su = np.maximum(su_init, _WARM_FLOOR)
    return factors if dtype is None else factors.astype(dtype)
