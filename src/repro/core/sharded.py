"""Sharded block-coordinate solvers over a user partition.

The multiplicative sweeps of Algorithms 1 and 2 are row-separable in
everything except the feature factor: ``Sp``/``Hp`` touch only tweet
rows, ``Su``/``Hu`` only user rows, and the ``Sf`` numerator
``XuᵀSuHu + XpᵀSpHp`` is a *sum over those rows*.  Partitioning users
(tweets follow their author) therefore yields shards that sweep their
own factor blocks independently and contribute an additive ``l×k``
piece to the global ``Sf`` update, which is reduced and applied once
per sweep — the classic block-coordinate escape hatch that turns the
monolithic solve into parallel per-shard work plus a tiny serial step.

Model semantics vs. the unsharded solvers:

- ``n_shards=1`` is the **identical** computation: same RNG draw order,
  same update expressions, same convergence checks — trajectories are
  bit-for-bit equal to :class:`~repro.core.offline.OfflineTriClustering`
  / :class:`~repro.core.online.OnlineTriClustering` (regression-tested).
- ``n_shards>1`` with ``halo="on"`` (the default) evaluates the graph
  regularizer on the **full** ``Gu``: cross-shard edges are retained as
  per-shard halo blocks and each sweep's fused exchange carries the
  boundary ``Su`` rows both ways (workers publish their post-pass
  boundary rows with the reply, the coordinator gathers the global
  boundary stack in fixed shard-rank order and hands each shard its
  ghost-row slice with the next command) — O(cut-edges × k) payload,
  zero extra rounds.  What remains approximate is block-diagonal
  ``Hp``/``Hu``/projectors and dropped ``Xr`` cut entries; full-model
  objectives of the merged factors land within a fraction of a percent
  of the unsharded solver at bench scale.  ``halo="off"`` restores the
  legacy block-diagonal approximation (cut ``Gu`` edges dropped too,
  tallied in :class:`~repro.graph.partition.ShardedGraph`; tests pin a
  20% ceiling).  Either way runs are seed-deterministic for a fixed
  ``(seed, n_shards, partitioner)`` — initialization is
  global-then-scattered and reductions are ordered.
- After the last sweep, per-shard ``Hp``/``Hu`` are distilled into one
  global pair by iterating the *global* Eq. (12)/(13) updates on the
  reduced numerators (``Σ_s Sp_sᵀXp_sSf`` etc.), so the merged
  :class:`~repro.core.state.FactorSet` serves classify traffic exactly
  like an unsharded one.

Execution backends: every shard interaction is expressed as a picklable
module-level *command* run against shard state held by the
:class:`~repro.utils.executor.WorkerPool` (``backend="serial"|"thread"|
"process"|"socket"``).  States are scattered **once per solve** (for
the out-of-process backends, as compact :meth:`~repro.graph.partition.
ShardBlock.to_payload` CSR pieces pinned worker-resident under a shard
epoch — the socket backend ships those same payloads over TCP to
workers on other hosts, unchanged).  ``Sf`` itself is a version-keyed
*shared resident* (:meth:`~repro.utils.executor.WorkerPool.share`):
the full matrix is broadcast exactly once per solve, and each sweep
then runs a **single fused exchange** — the coordinator stages the
reduced ``l×k`` contribution as a versioned update (every holder,
mirror and worker alike, advances its resident copy through the
identical :func:`~repro.core.updates.apply_sf_update`), and the shard
pass plus the one-sweep-lagged objective evaluation ride one command.
Per-sweep IPC is therefore one exchange round and ``O(l·k)`` per
shard, never ``O(nnz)``.  Results are bit-identical across backends:
the commands are the same functions, replies are collected into shard
order, and all reductions run on the caller.

Only the ``"projector"`` update style is supported: the Lagrangian
Δ-split needs global factor grams mid-sweep, which would serialize the
very step sharding parallelizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.convergence import ConvergenceHistory
from repro.core.kernels import get_kernel, resolve_kernel_name
from repro.core.objective import ObjectiveValue, ObjectiveWeights, compute_objective
from repro.core.offline import OfflineTriClustering, TriClusteringResult
from repro.core.online import OnlineTriClustering
from repro.core.spmm import get_spmm, resolve_spmm_name
from repro.core.state import FactorSet
from repro.core.sweepcache import SweepCache
from repro.core.updates import (
    apply_sf_update,
    sf_sweep_contribution,
    update_hp,
    update_hu,
    update_sp,
    update_su,
    update_su_online,
)
from repro.graph.partition import (
    ShardBlock,
    ShardedGraph,
    extract_shard_blocks,
    make_partition,
    validate_halo,
    validate_partitioner,
)
from repro.graph.tripartite import TripartiteGraph
from repro.utils.executor import (
    WorkerPool,
    default_worker_count,
    validate_backend,
)
from repro.utils.threads import affinity_core_count
from repro.utils.transport import validate_workers
from repro.utils.matrices import safe_sqrt_ratio
from repro.utils.rng import spawn_rng

#: Iterations of the global Eq. (12)/(13) updates used to distill one
#: ``Hp``/``Hu`` pair from per-shard factors at merge time.  The problem
#: is a k×k convex quadratic, so this converges in a handful of steps.
CONSENSUS_ITERATIONS = 25

#: ``n_shards="auto"``: one shard per this many users, capped by the
#: worker count.  Below ~64 users per shard the per-shard matrices are
#: too small for parallel overlap to beat dispatch overhead (the same
#: scale floor the sharding benchmark gates its speedup assertion on).
AUTO_USERS_PER_SHARD = 64


def resolve_shard_count(
    n_shards: int | str, num_users: int, max_workers: int | None = None
) -> int:
    """Resolve ``n_shards`` (an int or ``"auto"``) for one snapshot.

    The ``"auto"`` heuristic picks ``min(workers, num_users // 64)``
    (floored at 1): enough shards to keep every worker busy, but never
    so many that a shard drops below :data:`AUTO_USERS_PER_SHARD` users
    — tiny shards pay more in dispatch and cut edges than they earn in
    overlap.  ``workers`` is ``max_workers`` when set, else the
    machine's CPU count, so the same stream adapts per host and per
    snapshot as the user population grows.
    """
    if n_shards == "auto":
        workers = (
            max_workers if max_workers is not None else default_worker_count()
        )
        return int(max(1, min(workers, num_users // AUTO_USERS_PER_SHARD)))
    return int(n_shards)


@dataclass
class _ShardState:
    """One shard's live factors plus its sweep-local context.

    Lives wherever the pool's backend keeps resident state: the solver
    process for serial/thread, the owning worker for process.  Mutated
    in place by the sweep commands below.
    """

    block: ShardBlock
    sp: np.ndarray
    su: np.ndarray
    hp: np.ndarray
    hu: np.ndarray
    cache: SweepCache
    su_prior: np.ndarray | None = None
    evolving_rows: np.ndarray | None = None
    #: Concrete sweep-kernel name ("numpy"/"numba"), resolved once by the
    #: coordinator so every shard — local or remote — runs the same
    #: implementation ("auto" must not re-resolve per worker host).
    kernel: str = "numpy"
    #: Concrete spmm engine name ("scipy"/"threads"/"numba"), pinned by
    #: the coordinator for the same cross-host reason.  Engines are
    #: float64 bit-identical, so this (and the thread budget below) is
    #: speed-only.
    spmm: str = "scipy"
    #: Per-shard spmm thread budget; ``None`` defers to the worker
    #: process's installed default (fair share) or the core count.
    spmm_threads: int | None = None
    #: Exchanged neighbour ``Su`` rows aligned with the block's halo
    #: (ghost) columns, refreshed from the coordinator's boundary stack
    #: at every exchange; ``None`` when the solve runs without a halo.
    su_halo: np.ndarray | None = None
    #: Pre-pass snapshot ``(sp, su, hp, hu, su_halo)`` taken by the
    #: fused offline command whenever its objective may trigger
    #: convergence, so the merge can roll back the one speculative
    #: extra pass (halo rows included — a rolled-back objective must
    #: not mix pre-sweep factors with post-sweep neighbour rows).
    saved: tuple | None = None


# --------------------------------------------------------------------- #
# Shard commands (picklable module-level functions)
#
# Everything the solver asks of a shard crosses the WorkerPool as one of
# these functions plus small arguments (the global ``Sf``, the weights,
# a prior).  Returns are factor-sized (``l×k`` contributions, k×k merge
# terms, scalar objective parts) — never shard blocks.
# --------------------------------------------------------------------- #


def _shard_state_payload(state: _ShardState) -> tuple:
    """Compact once-per-scatter shipping form of a shard state."""
    return (
        state.block.to_payload(),
        state.sp,
        state.su,
        state.hp,
        state.hu,
        state.su_prior,
        state.evolving_rows,
        state.kernel,
        state.spmm,
        state.spmm_threads,
        state.su_halo,
    )


def _shard_state_from_payload(payload: tuple) -> _ShardState:
    (
        block_payload, sp, su, hp, hu, su_prior, evolving_rows, kernel,
        spmm, spmm_threads, su_halo,
    ) = payload
    block = ShardBlock.from_payload(block_payload)
    return _ShardState(
        block=block,
        sp=sp,
        su=su,
        hp=hp,
        hu=hu,
        cache=_shard_cache(block, spmm, spmm_threads),
        su_prior=su_prior,
        evolving_rows=evolving_rows,
        kernel=kernel,
        spmm=spmm,
        spmm_threads=spmm_threads,
        su_halo=su_halo,
    )


def _shard_cache(
    block: ShardBlock, spmm: str = "scipy", spmm_threads: int | None = None
) -> SweepCache:
    """A shard's sweep cache, sharing the block's CSR transposes.

    The engine is rebuilt from its pinned name wherever the state lands
    (engines hold thread pools / compiled functions and never cross the
    pickle boundary); ``spmm_threads=None`` picks up the worker's
    installed fair-share default locally.
    """
    return SweepCache(
        block.xp, block.xu, block.xr, xp_T=block.xp_T, xu_T=block.xu_T,
        spmm=get_spmm(spmm, spmm_threads),
    )


def _shard_contribution(state: _ShardState) -> np.ndarray:
    """The shard's additive ``l×k`` piece of the ``Sf`` numerator.

    The transposes go through the cache accessors rather than straight
    off the block, so the working-set layout policy applies to shards
    exactly as it does to the unsharded solver (large shards stream the
    lazy CSC view; either path is bitwise identical).
    """
    return sf_sweep_contribution(
        state.sp, state.hp, state.su, state.hu,
        state.block.xp, state.block.xu,
        xp_T=state.cache.xp_T(), xu_T=state.cache.xu_T(),
        spmm=state.cache.spmm,
    )


def _shard_offline_pass(
    state: _ShardState, sf: np.ndarray, weights: ObjectiveWeights
) -> np.ndarray:
    """Algorithm 1 order within one shard: Sp, Hp, Su, Hu."""
    block = state.block
    kernel = get_kernel(state.kernel, threads=state.spmm_threads)
    if block.num_tweets:
        state.sp = update_sp(
            state.sp, sf, state.hp, state.su, block.xp, block.xr,
            style="projector", cache=state.cache, kernel=kernel,
        )
        state.hp = update_hp(
            state.hp, state.sp, sf, block.xp, cache=state.cache,
            kernel=kernel,
        )
    if block.num_users:
        state.su = update_su(
            state.su, sf, state.hu, state.sp, block.xu, block.xr,
            block.gu, block.du, weights.beta,
            style="projector", cache=state.cache, kernel=kernel,
            gu_halo=block.gu_halo, su_halo=state.su_halo,
        )
        state.hu = update_hu(
            state.hu, state.su, sf, block.xu, cache=state.cache,
            kernel=kernel,
        )
    return _shard_contribution(state)


def _shard_online_pass(
    state: _ShardState, sf: np.ndarray, weights: ObjectiveWeights
) -> np.ndarray:
    """Algorithm 2 order within one shard: Sp, Hp, Hu, Su."""
    block = state.block
    kernel = get_kernel(state.kernel, threads=state.spmm_threads)
    if block.num_tweets:
        state.sp = update_sp(
            state.sp, sf, state.hp, state.su, block.xp, block.xr,
            style="projector", cache=state.cache, kernel=kernel,
        )
        state.hp = update_hp(
            state.hp, state.sp, sf, block.xp, cache=state.cache,
            kernel=kernel,
        )
    if block.num_users:
        state.hu = update_hu(
            state.hu, state.su, sf, block.xu, cache=state.cache,
            kernel=kernel,
        )
        state.su = update_su_online(
            state.su, sf, state.hu, state.sp, block.xu, block.xr,
            block.gu, block.du, weights.beta, weights.gamma,
            state.su_prior, state.evolving_rows,
            style="projector", cache=state.cache, kernel=kernel,
            gu_halo=block.gu_halo, su_halo=state.su_halo,
        )
    return _shard_contribution(state)


def _shard_objective(
    state: _ShardState,
    sf: np.ndarray,
    weights: ObjectiveWeights,
    sf_prior,
    su_prior_active: bool,
    halo: np.ndarray | None = None,
) -> ObjectiveValue:
    """One shard's objective terms on its current factors.

    ``halo`` refreshes the exchanged neighbour rows first when given —
    an objective-only round after the final pass must see the *final*
    boundary rows, not the ones delivered before that pass, or the
    graph cross term would mix pre- and post-sweep factors.
    """
    if halo is not None:
        state.su_halo = halo
    block = state.block
    factors = FactorSet(
        sf=sf, sp=state.sp, su=state.su, hp=state.hp, hu=state.hu
    )
    return compute_objective(
        factors,
        block.xp,
        block.xu,
        block.xr,
        block.laplacian,
        weights,
        sf_prior=sf_prior,
        su_prior=state.su_prior if su_prior_active else None,
        su_prior_rows=state.evolving_rows if su_prior_active else None,
        statics=block.statics,
        spmm=state.cache.spmm,
        gu_halo=block.gu_halo,
        su_halo=state.su_halo,
    )


def _shared_sf_step(
    sf: np.ndarray,
    total: np.ndarray,
    sf_prior,
    alpha: float,
    kernel_name: str,
    kernel_threads: int | None,
) -> np.ndarray:
    """Versioned-resident ``Sf`` step: advance a holder's copy in place.

    Run identically on the coordinator's mirror and on every worker
    holding the ``"sf"`` shared resident, so only the reduced ``l×k``
    contribution crosses the wire per sweep — never ``Sf`` itself.  The
    kernel tails are bit-identical across implementations and thread
    budgets, so every holder lands on the same bits.
    """
    return apply_sf_update(
        sf, total, sf_prior, alpha,
        kernel=get_kernel(kernel_name, threads=kernel_threads),
    )


def _shard_boundary(state: _ShardState) -> np.ndarray | None:
    """The shard's published boundary ``Su`` rows (``None`` halo-off).

    A fancy-indexed copy, so the reply never aliases the live factor
    the next pass mutates.
    """
    boundary_local = state.block.boundary_local
    if boundary_local is None:
        return None
    return state.su[boundary_local]


def _shard_offline_pass_with_objective(
    state: _ShardState,
    sf: np.ndarray,
    weights: ObjectiveWeights,
    sf_prior,
    evaluate: bool,
    halo: np.ndarray | None = None,
) -> tuple:
    """Fused Algorithm 1 exchange: lagged objective, then the pass.

    The plain offline loop evaluates the objective *after* each sweep's
    ``Sf`` step — i.e. on the same iterate this command sees *before*
    running its pass.  Evaluating first therefore reports the previous
    sweep's objective (a one-sweep lag the coordinator accounts for),
    letting a converging solve pay one exchange per sweep instead of
    two.  When ``evaluate`` is set the pre-pass factors are snapshotted
    so convergence can roll back the speculative extra pass bit-exactly.

    ``halo`` piggybacks the cut-edge exchange on this same round: it
    carries every neighbour's *previous-pass* boundary rows — exactly
    the iterate the lagged objective needs, and exactly the remote
    values the unsharded Jacobi-style ``Su`` update would read during
    this pass.  The reply returns this shard's post-pass boundary rows
    for the coordinator to redistribute next exchange.
    """
    if halo is not None:
        state.su_halo = halo
    objective = None
    if evaluate:
        objective = _shard_objective(state, sf, weights, sf_prior, False)
        state.saved = (
            state.sp.copy(), state.su.copy(),
            state.hp.copy(), state.hu.copy(),
            state.su_halo,
        )
    contribution = _shard_offline_pass(state, sf, weights)
    return objective, contribution, _shard_boundary(state)


def _shard_online_pass_with_objective(
    state: _ShardState,
    sf: np.ndarray,
    weights: ObjectiveWeights,
    sf_prior,
    su_prior_active: bool,
    evaluate: bool,
    halo: np.ndarray | None = None,
) -> tuple:
    """Fused Algorithm 2 exchange: the pass, then the current objective.

    Algorithm 2 updates ``Sf`` *before* the row factors, so the staged
    shared-resident step has already advanced this worker's ``Sf`` by
    the time the command runs — pass and objective both see the current
    iterate and no lag or rollback is needed.

    ``halo`` delivers the neighbours' pre-pass boundary rows (the
    values the pass's graph term reads); the fused objective therefore
    sees cross-shard terms one sweep stale — the per-sweep convergence
    trace's documented skew, identical on every backend.  A trailing
    objective-only round (see :meth:`ShardedSolver.objective`) always
    re-delivers fresh rows, so recorded *final* objectives are exact.
    """
    if halo is not None:
        state.su_halo = halo
    contribution = _shard_online_pass(state, sf, weights)
    objective = (
        _shard_objective(state, sf, weights, sf_prior, su_prior_active)
        if evaluate
        else None
    )
    return objective, contribution, _shard_boundary(state)


def _shard_merge_upload(
    state: _ShardState, sf: np.ndarray, rollback: bool = False
) -> dict:
    """End-of-solve upload: final row factors + reduced consensus terms.

    The consensus fixed point needs only ``SᵀXSf`` and ``SᵀS`` summed
    over shards, so those k×k terms are computed where the blocks live;
    the row factors themselves must cross once anyway (they are the
    merged model).  ``rollback`` restores the pre-pass snapshot taken
    by the fused offline command when convergence fired one exchange
    after the converged iterate — halo rows included, so any later
    objective evaluation sees neighbour rows consistent with the
    rolled-back factors.
    """
    if rollback:
        (
            state.sp, state.su, state.hp, state.hu, state.su_halo,
        ) = state.saved
    state.saved = None
    upload: dict = {
        "sp": state.sp, "su": state.su, "hp": state.hp, "hu": state.hu
    }
    block = state.block
    for which, rows, factor, data in (
        ("hp", block.num_tweets, state.sp, block.xp),
        ("hu", block.num_users, state.su, block.xu),
    ):
        if rows:
            upload[f"{which}_terms"] = (
                rows, factor.T @ state.cache.dot(data, sf), factor.T @ factor
            )
        else:
            upload[f"{which}_terms"] = None
    return upload


class ShardedSolver:
    """Orchestrates offline and online sweeps over a sharded graph.

    Bound to one :class:`~repro.graph.partition.ShardedGraph` and one
    initial :class:`FactorSet` (scattered row-wise onto the shards).
    The driving solver calls :meth:`solve_offline` / :meth:`solve_online`
    once (they own the convergence loop, fusing each sweep's pass,
    ``Sf`` step, and objective into a single exchange) and
    :meth:`merged_factors` once at the end.  All shard interaction goes
    through the supplied :class:`~repro.utils.executor.WorkerPool` as
    module-level commands against states scattered at construction —
    the pool's backend decides whether those states live on this
    process's heap (serial/thread), pinned inside worker processes, or
    pinned inside remote socket workers.
    Reductions run on the calling thread in shard order, so results are
    deterministic under any scheduling and identical across backends.
    """

    def __init__(
        self,
        sharded: ShardedGraph,
        factors: FactorSet,
        pool: WorkerPool,
        update_style: str = "projector",
        su_prior: np.ndarray | None = None,
        evolving_rows: np.ndarray | None = None,
        kernel: str = "numpy",
        spmm: str = "scipy",
        spmm_threads: int | None = None,
    ) -> None:
        if update_style != "projector":
            raise ValueError(
                "sharded sweeps support only the 'projector' update style"
            )
        # Pin "auto" (or an instance) to a concrete kernel name here, so
        # every shard — including ones resident on remote worker hosts —
        # runs the same implementation regardless of what is importable
        # over there.  Same for the spmm engine: the *name* crosses the
        # pool, never the engine object.
        kernel = resolve_kernel_name(kernel)
        spmm = resolve_spmm_name(spmm)
        if (
            spmm_threads is None
            # repro-lint: disable=REP006 -- fair-share thread budget applies
            # only to the in-process thread backend; pool.backend was
            # validated by WorkerPool.
            and pool.backend == "thread"
            and pool.max_workers is not None
            and pool.max_workers > 1
        ):
            # Thread-backend shards share this process: give each
            # concurrently running shard its fair share of the cores so
            # W shards × T spmm threads never oversubscribes.  (The
            # serial backend keeps the full budget; process/socket
            # workers install their own fair-share default at startup.)
            concurrent = max(1, min(len(sharded.blocks), pool.max_workers))
            spmm_threads = max(1, affinity_core_count() // concurrent)
        self._kernel_name = kernel
        self._kernel_threads = spmm_threads
        self.sharded = sharded
        self.pool = pool
        self.update_style = update_style
        self.num_shards = len(sharded.blocks)

        assignments = sharded.partition.assignments
        local_index = np.empty(sharded.graph.num_users, dtype=np.int64)
        for block in sharded.blocks:
            local_index[block.user_rows] = np.arange(block.num_users)

        # Halo bookkeeping: the global boundary stack concatenates every
        # shard's published rows in shard-rank order, and each shard's
        # gather index maps its ghost columns into that stack — fixed at
        # construction, so redistribution is deterministic fancy
        # indexing at any backend or thread count.  A partition with no
        # cut edges (or extracted halo-off) degenerates to the legacy
        # no-halo exchange.
        self._halo = any(
            block.gu_halo is not None and block.gu_halo.nnz
            for block in sharded.blocks
        )
        self._halo_stack: np.ndarray | None = None
        self._halo_saved: np.ndarray | None = None
        if self._halo:
            offsets = np.zeros(self.num_shards + 1, dtype=np.int64)
            for position, block in enumerate(sharded.blocks):
                offsets[position + 1] = (
                    offsets[position] + block.boundary_local.shape[0]
                )
            self._halo_gather = [
                offsets[block.halo_owner] + block.halo_source
                for block in sharded.blocks
            ]
            self._halo_stack = np.concatenate(
                [
                    factors.su[block.user_rows[block.boundary_local]]
                    for block in sharded.blocks
                ]
            )

        states: list[_ShardState] = []
        for block in sharded.blocks:
            if su_prior is not None and evolving_rows is not None:
                selected = assignments[evolving_rows] == block.index
                shard_evolving = local_index[evolving_rows[selected]]
                shard_prior: np.ndarray | None = su_prior[selected]
            else:
                shard_evolving = np.empty(0, dtype=np.int64)
                shard_prior = None
            states.append(
                _ShardState(
                    block=block,
                    sp=factors.sp[block.tweet_rows],
                    su=factors.su[block.user_rows],
                    hp=factors.hp.copy(),
                    hu=factors.hu.copy(),
                    cache=_shard_cache(block, spmm, spmm_threads),
                    su_prior=shard_prior,
                    evolving_rows=shard_evolving,
                    kernel=kernel,
                    spmm=spmm,
                    spmm_threads=spmm_threads,
                    su_halo=(
                        self._halo_stack[self._halo_gather[block.index]]
                        if self._halo
                        else None
                    ),
                )
            )
        # One shipment per solve; sweeps exchange only l×k pieces.
        self.epoch = pool.scatter(
            states,
            to_payload=_shard_state_payload,
            from_payload=_shard_state_from_payload,
        )
        # Sf is a versioned shared resident: broadcast in full exactly
        # once here, advanced by staged l×k updates afterwards.
        pool.share("sf", factors.sf)
        self._contributions: list[np.ndarray] | None = None
        self._reduce_buffer: np.ndarray | None = None
        self._rollback = False

    @property
    def sf(self) -> np.ndarray:
        """The coordinator's mirror of the shared-resident ``Sf``."""
        return self.pool.shared_value("sf")

    def _broadcast(self, *args) -> list[tuple]:
        return [args] * self.num_shards

    def _prior_ref(self, index: int):
        """``sf_prior`` handle for shard ``index`` (shard 0 carries it).

        Every term of Eq. (1)/(19) except the α prior is row-separable;
        the prior depends only on the global ``Sf``, so shard 0 counts
        it exactly once and the others evaluate with ``sf_prior=None``.
        """
        return self.pool.shared_ref("sf_prior") if index == 0 else None

    def _halo_args(self) -> list:
        """Per-shard ghost-row slices for one exchange (halo-off: Nones).

        Slices are gathered from the current boundary stack in fixed
        shard-rank order and ride the exchange as command arguments —
        the halo costs bytes on the fused round, never an extra round.
        """
        if not self._halo:
            return [None] * self.num_shards
        slices = [self._halo_stack[gather] for gather in self._halo_gather]
        self.pool.telemetry.halo_bytes += sum(s.nbytes for s in slices)
        return slices

    def _consume_halo(self, boundaries: list) -> None:
        """Rebuild the boundary stack from one exchange's replies."""
        if not self._halo:
            return
        # Keep the previously delivered stack: offline convergence may
        # roll this exchange's speculative pass back, and the stack must
        # roll back with the factors it was exchanged against.
        self._halo_saved = self._halo_stack
        self._halo_stack = np.concatenate(boundaries)
        telemetry = self.pool.telemetry
        telemetry.halo_updates += 1
        telemetry.halo_bytes += self._halo_stack.nbytes

    # ------------------------------------------------------------------ #
    # Solve loops (fused sweep + objective exchanges)
    # ------------------------------------------------------------------ #

    def solve_offline(
        self,
        weights: ObjectiveWeights,
        sf_prior,
        *,
        max_iterations: int,
        tolerance: float,
        patience: int,
        track_history: bool,
        objective_every: int = 1,
    ) -> tuple[ConvergenceHistory, bool, int]:
        """Run Algorithm 1 to convergence, one exchange per sweep.

        Exchange ``i`` (0-based) stages the ``Sf`` step for sweep ``i``
        (nothing on the first), evaluates the *previous* sweep's
        objective against the pre-pass factors (snapshotting them), and
        runs sweep ``i+1``'s pass.  The one-sweep lag means convergence
        detected at exchange ``i`` converged at sweep ``i`` — the
        speculative pass ``i+1`` is rolled back at merge time and
        ``Sf`` is simply not advanced, reproducing the plain loop's
        record sequence, factors, and iteration count bit for bit.
        """
        self.pool.share("sf_prior", sf_prior)
        evaluate = track_history or tolerance > 0
        history = ConvergenceHistory()
        converged = False
        iterations_run = 0
        self._rollback = False
        for iteration in range(max_iterations):
            if iteration > 0:
                self._advance_sf(weights)
            fuse = (
                evaluate
                and iteration >= 1
                and iteration % objective_every == 0
            )
            halo_slices = self._halo_args()
            replies = self.pool.run_resident(
                _shard_offline_pass_with_objective,
                [
                    (self.pool.shared_ref("sf"), weights,
                     self._prior_ref(index), fuse, halo_slices[index])
                    for index in range(self.num_shards)
                ],
            )
            self._contributions = [reply[1] for reply in replies]
            self._consume_halo([reply[2] for reply in replies])
            if fuse:
                history.append(
                    self._reduce_objective([reply[0] for reply in replies])
                )
                if history.converged(tolerance, window=patience):
                    converged = True
                    iterations_run = iteration
                    self._rollback = True
                    break
            iterations_run = iteration + 1
        if not converged:
            # The last sweep's Sf step and objective are still pending
            # (the lag never catches up inside the loop).
            self._advance_sf(weights)
            history.append(self.objective(weights))
            if evaluate and history.converged(tolerance, window=patience):
                converged = True
        return history, converged, iterations_run

    def solve_online(
        self,
        weights: ObjectiveWeights,
        sf_prior,
        *,
        max_iterations: int,
        tolerance: float,
        patience: int,
        track_history: bool,
        objective_every: int = 1,
        su_prior_active: bool = False,
    ) -> tuple[ConvergenceHistory, bool, int]:
        """Run Algorithm 2 to convergence, one exchange per sweep.

        Algorithm 2 advances ``Sf`` *before* the row factors, so after
        a priming exchange for the initial contributions each fused
        exchange stages the ``Sf`` step, runs the pass, and evaluates
        the objective on the very same iterate — no lag, no rollback.
        """
        self.pool.share("sf_prior", sf_prior)
        evaluate = track_history or tolerance > 0
        history = ConvergenceHistory()
        converged = False
        iterations_run = 0
        self._contributions = self.pool.run_resident(
            _shard_contribution, self._broadcast()
        )
        for iteration in range(max_iterations):
            self._advance_sf(weights)
            fuse = evaluate and (iteration + 1) % objective_every == 0
            halo_slices = self._halo_args()
            replies = self.pool.run_resident(
                _shard_online_pass_with_objective,
                [
                    (self.pool.shared_ref("sf"), weights,
                     self._prior_ref(index), su_prior_active, fuse,
                     halo_slices[index])
                    for index in range(self.num_shards)
                ],
            )
            self._contributions = [reply[1] for reply in replies]
            self._consume_halo([reply[2] for reply in replies])
            iterations_run = iteration + 1
            if fuse:
                history.append(
                    self._reduce_objective([reply[0] for reply in replies])
                )
                if history.converged(tolerance, window=patience):
                    converged = True
                    break
        if not evaluate:
            history.append(self.objective(weights, su_prior_active))
        elif iterations_run % objective_every != 0:
            # objective_every skipped the final sweep; record it.
            history.append(self.objective(weights, su_prior_active))
            if history.converged(tolerance, window=patience):
                converged = True
        return history, converged, iterations_run

    def _advance_sf(self, weights: ObjectiveWeights) -> None:
        """Stage the versioned ``Sf`` step from the reduced contributions.

        Only the ``l×k`` total crosses the wire; every holder (the
        coordinator's mirror eagerly, each worker on its next exchange)
        applies the identical :func:`_shared_sf_step`.
        """
        self.pool.share_update(
            "sf",
            _shared_sf_step,
            self._reduce_contributions(),
            self.pool.shared_ref("sf_prior"),
            weights.alpha,
            self._kernel_name,
            self._kernel_threads,
        )

    def _reduce_contributions(self) -> np.ndarray:
        parts = self._contributions
        assert parts is not None
        if len(parts) == 1:
            return parts[0]
        # Accumulate into one preallocated buffer, same pairwise order
        # as the naive left fold (bit-identical).  The buffer is safe to
        # reuse: the mirror consumes it eagerly and the staged update op
        # is serialized during the next exchange's send, before the next
        # reduction overwrites it.
        total = self._reduce_buffer
        if (
            total is None
            or total.shape != parts[0].shape
            or total.dtype != parts[0].dtype
        ):
            total = self._reduce_buffer = np.empty_like(parts[0])
        np.copyto(total, parts[0])
        for part in parts[1:]:
            np.add(total, part, out=total)
        return total

    # ------------------------------------------------------------------ #
    # Objective
    # ------------------------------------------------------------------ #

    def objective(
        self,
        weights: ObjectiveWeights,
        su_prior_active: bool = False,
    ) -> ObjectiveValue:
        """Current objective, reduced over shards (objective-only round).

        Requires a prior :meth:`solve_offline`/:meth:`solve_online`
        call on this solver (they install the ``"sf_prior"`` shared
        resident the evaluation references).  Halo solves re-deliver
        the current boundary stack so the cross-shard graph term is
        evaluated against the same iterate as the local terms.
        """
        halo_slices = self._halo_args()
        parts = self.pool.run_resident(
            _shard_objective,
            [
                (self.pool.shared_ref("sf"), weights,
                 self._prior_ref(index), su_prior_active,
                 halo_slices[index])
                for index in range(self.num_shards)
            ],
        )
        return self._reduce_objective(parts)

    def _reduce_objective(self, parts: list[ObjectiveValue]) -> ObjectiveValue:
        if len(parts) == 1:
            return parts[0]
        return ObjectiveValue(
            tweet_loss=sum(p.tweet_loss for p in parts),
            user_loss=sum(p.user_loss for p in parts),
            retweet_loss=sum(p.retweet_loss for p in parts),
            lexicon_loss=sum(p.lexicon_loss for p in parts),
            graph_loss=sum(p.graph_loss for p in parts),
            temporal_loss=sum(p.temporal_loss for p in parts),
        )

    # ------------------------------------------------------------------ #
    # Merge
    # ------------------------------------------------------------------ #

    def merged_factors(
        self, consensus_iterations: int = CONSENSUS_ITERATIONS
    ) -> FactorSet:
        """Scatter shard rows back and distill global ``Hp``/``Hu``.

        Consumes any pending convergence rollback left by
        :meth:`solve_offline` (the speculative extra pass is undone on
        the shards before their factors are uploaded).
        """
        uploads = self.pool.run_resident(
            _shard_merge_upload,
            self._broadcast(self.pool.shared_ref("sf"), self._rollback),
        )
        if self._rollback and self._halo:
            # The shards just restored their pre-pass snapshot; the
            # coordinator's boundary stack rolls back alongside so a
            # later objective round redistributes matching rows.
            self._halo_stack = self._halo_saved
        self._rollback = False
        graph = self.sharded.graph
        num_classes = self.sf.shape[1]
        sp = np.zeros((graph.num_tweets, num_classes), dtype=self.sf.dtype)
        su = np.zeros((graph.num_users, num_classes), dtype=self.sf.dtype)
        for block, upload in zip(self.sharded.blocks, uploads):
            sp[block.tweet_rows] = upload["sp"]
            su[block.user_rows] = upload["su"]
        if self.num_shards == 1:
            hp, hu = uploads[0]["hp"], uploads[0]["hu"]
        else:
            hp = self._consensus_association(
                "hp", uploads, consensus_iterations
            )
            hu = self._consensus_association(
                "hu", uploads, consensus_iterations
            )
        return FactorSet(sf=self.sf, sp=sp, su=su, hp=hp, hu=hu)

    def _consensus_association(
        self, which: str, uploads: list[dict], iterations: int
    ) -> np.ndarray:
        """Global Eq. (12)/(13) fixed point from reduced shard terms.

        With shard factors fixed, the global numerator ``SᵀXSf`` and
        gram ``SᵀS`` decompose over shards exactly, so each shard
        uploads its k×k terms and iterating the plain multiplicative
        update from the size-weighted mean of the shard associations
        converges to the one ``k×k`` matrix that best explains the
        *whole* dataset given the merged entity factors.
        """
        sf = self.sf
        num_classes = sf.shape[1]
        sfT_sf = sf.T @ sf
        numerator = np.zeros((num_classes, num_classes), dtype=sf.dtype)
        gram = np.zeros((num_classes, num_classes), dtype=sf.dtype)
        weighted = np.zeros((num_classes, num_classes), dtype=sf.dtype)
        total_rows = 0
        for upload in uploads:
            terms = upload[f"{which}_terms"]
            if terms is None:
                continue
            rows, numerator_term, gram_term = terms
            numerator += numerator_term
            gram += gram_term
            weighted += rows * upload[which]
            total_rows += rows
        if total_rows == 0:
            return np.eye(num_classes, dtype=sf.dtype)
        association = weighted / total_rows
        for _ in range(iterations):
            association = association * safe_sqrt_ratio(
                numerator, gram @ association @ sfT_sf
            )
        return association


def _validate_sharding(
    n_shards: int | str,
    update_style: str,
    backend: str,
    partitioner: object = "hash",
    workers=None,
    halo: str = "on",
) -> None:
    if n_shards != "auto" and (
        not isinstance(n_shards, int) or n_shards < 1
    ):
        raise ValueError(
            f"n_shards must be >= 1 or 'auto', got {n_shards!r}"
        )
    validate_halo(halo)
    if update_style != "projector":
        raise ValueError(
            "sharded solvers support only update_style='projector' (the "
            "Lagrangian Δ-split needs global factor grams mid-sweep)"
        )
    validate_backend(backend)
    validate_partitioner(partitioner)
    # repro-lint: disable=REP006 -- workers= applicability check immediately
    # after validate_backend; the registry owns the name, not this branch.
    if backend == "socket":
        validate_workers(workers)
    elif workers is not None:
        raise ValueError(
            "workers= is only meaningful with backend='socket' "
            f"(got backend={backend!r})"
        )


def open_solver_pool(
    max_workers: int | None,
    backend: str,
    n_shards: int,
    workers=None,
) -> WorkerPool:
    """A pool sized for a sharded solve.

    With ``max_workers=None`` the process backend is capped at the
    shard count — idle worker processes cost real memory, idle threads
    don't.  ``n_shards`` is a hint (use the worker default when the
    count is still ``"auto"``-unresolved).  The socket backend's width
    is its ``workers=["host:port", ...]`` list instead.  Shared by the
    per-fit pools here and the serving engine's long-lived solver pool,
    so the cap policy lives in exactly one place.
    """
    # repro-lint: disable=REP006 -- pool sizing policy per validated
    # backend (socket width = workers list, process capped at shards).
    if backend == "socket":
        return WorkerPool(backend="socket", workers=workers)
    # repro-lint: disable=REP006 -- see above: sizing policy, not dispatch.
    if max_workers is None and backend == "process":
        max_workers = max(1, min(default_worker_count(), n_shards))
    return WorkerPool(max_workers, backend=backend)


class ShardedTriClustering(OfflineTriClustering):
    """Algorithm 1 over a user partition (offline sharded solver).

    Parameters (beyond :class:`OfflineTriClustering`)
    ----------
    n_shards:
        User partitions; 1 reproduces the plain solver bit for bit.
        ``"auto"`` picks per fit from the user count and worker count
        (see :func:`resolve_shard_count`).
    partitioner:
        ``"hash"`` (default), ``"greedy"``, or a callable — see
        :func:`repro.graph.partition.make_partition`.
    max_workers:
        Worker bound for the shard fan-out (``None`` = CPU count,
        capped at ``n_shards`` for the process backend).
    backend:
        ``"serial"``, ``"thread"`` (default), ``"process"`` or
        ``"socket"`` — see :mod:`repro.utils.executor`.  Results are
        bit-identical across backends.
    workers:
        ``backend="socket"`` only: ``["host:port", ...]`` addresses of
        running ``python -m repro worker`` servers.
    consensus_iterations:
        Global ``Hp``/``Hu`` distillation steps at merge time.
    halo:
        ``"on"`` (default) exchanges boundary ``Su`` rows per sweep so
        the graph regularizer sees the full ``Gu``; ``"off"`` drops
        cut edges (the legacy block-diagonal approximation).
    """

    def __init__(
        self,
        num_classes: int = 3,
        alpha: float = 0.05,
        beta: float = 0.8,
        max_iterations: int = 200,
        tolerance: float = 1e-6,
        patience: int = 3,
        seed=None,
        track_history: bool = True,
        update_style: str = "projector",
        kernel: object = "auto",
        dtype: str = "float64",
        spmm: object = "auto",
        spmm_threads: int | None = None,
        objective_every: int = 1,
        n_shards: int | str = 1,
        partitioner="hash",
        max_workers: int | None = None,
        backend: str = "thread",
        workers=None,
        consensus_iterations: int = CONSENSUS_ITERATIONS,
        halo: str = "on",
    ) -> None:
        _validate_sharding(
            n_shards, update_style, backend, partitioner, workers, halo
        )
        super().__init__(
            num_classes=num_classes,
            alpha=alpha,
            beta=beta,
            max_iterations=max_iterations,
            tolerance=tolerance,
            patience=patience,
            seed=seed,
            track_history=track_history,
            update_style=update_style,
            kernel=kernel,
            dtype=dtype,
            spmm=spmm,
            spmm_threads=spmm_threads,
            objective_every=objective_every,
        )
        self.n_shards = n_shards
        self.partitioner = partitioner
        self.max_workers = max_workers
        self.backend = backend
        self.workers = workers
        self.consensus_iterations = consensus_iterations
        self.halo = halo
        self.last_plan: ShardedGraph | None = None
        #: Pool traffic/timing delta for the most recent fit (a
        #: :meth:`~repro.utils.executor.PoolTelemetry.delta` dict), or
        #: ``None`` before the first fit.
        self.last_telemetry: dict | None = None
        #: Optional externally-owned pool (e.g. the serving engine's).
        #: When set, fits run on it and never shut it down; when None,
        #: each fit opens and closes its own pool.
        self.pool: WorkerPool | None = None

    def fit(
        self,
        graph: TripartiteGraph,
        initial_factors: FactorSet | None = None,
    ) -> TriClusteringResult:
        rng = spawn_rng(self.seed)
        # Same cast sequence as the plain solver's fit (both are no-ops
        # in the float64 default), so 1-shard trajectories stay
        # bit-identical to it in either dtype.
        kernel = resolve_kernel_name(self.kernel)
        spmm = resolve_spmm_name(self.spmm)
        graph = graph.astype(self._np_dtype)
        self._validate_prior(graph)
        factors = self._initial_factors(graph, rng, initial_factors).astype(
            self._np_dtype
        )
        n_shards = resolve_shard_count(
            self.n_shards, graph.num_users, self.max_workers
        )
        sharded = extract_shard_blocks(
            graph,
            make_partition(graph, n_shards, self.partitioner),
            halo=self.halo == "on",
        )
        sf0 = graph.sf0

        pool = (
            self.pool
            if self.pool is not None
            else open_solver_pool(
                self.max_workers, self.backend, n_shards, self.workers
            )
        )
        try:
            telemetry_before = pool.telemetry.snapshot()
            solver = ShardedSolver(
                sharded, factors, pool, update_style=self.update_style,
                kernel=kernel, spmm=spmm, spmm_threads=self.spmm_threads,
            )
            history, converged, iterations_run = solver.solve_offline(
                self.weights,
                sf0,
                max_iterations=self.max_iterations,
                tolerance=self.tolerance,
                patience=self.patience,
                track_history=self.track_history,
                objective_every=self.objective_every,
            )
            merged = solver.merged_factors(self.consensus_iterations)
            self.last_telemetry = pool.telemetry.delta(telemetry_before)
        finally:
            if pool is not self.pool:
                pool.shutdown()
            else:
                # Externally-owned pool: release the graph-sized shard
                # states now rather than pinning them until the next fit.
                pool.discard_resident()
        self.last_plan = sharded
        return TriClusteringResult(
            factors=merged,
            history=history,
            converged=converged,
            iterations=iterations_run,
        )


class ShardedOnlineTriClustering(OnlineTriClustering):
    """Algorithm 2 over a user partition (online sharded solver).

    Inherits the temporal machinery (warm starts, decayed priors,
    per-user carried state) from :class:`OnlineTriClustering` unchanged
    — only the inner sweep loop is sharded, so 1-shard runs replay the
    plain solver's trajectory bit for bit.  The hash partitioner keys on
    user *ids*, so a user keeps their shard across snapshots.
    ``n_shards="auto"`` re-resolves the shard count on every snapshot
    from the snapshot's user count.  ``backend`` selects the execution
    backend per :mod:`repro.utils.executor`; on the process and socket
    backends an externally-owned pool keeps its workers (local
    processes or remote connections) across snapshots and each snapshot
    re-scatters its shard blocks under a fresh epoch.
    """

    def __init__(
        self,
        num_classes: int = 3,
        alpha: float = 0.9,
        beta: float = 0.8,
        gamma: float = 0.2,
        tau: float = 0.9,
        window: int = 2,
        max_iterations: int = 100,
        tolerance: float = 1e-5,
        patience: int = 3,
        seed=None,
        track_history: bool = False,
        update_style: str = "projector",
        state_smoothing: float = 0.8,
        kernel: object = "auto",
        dtype: str = "float64",
        spmm: object = "auto",
        spmm_threads: int | None = None,
        objective_every: int = 1,
        n_shards: int | str = 1,
        partitioner="hash",
        max_workers: int | None = None,
        backend: str = "thread",
        workers=None,
        consensus_iterations: int = CONSENSUS_ITERATIONS,
        halo: str = "on",
    ) -> None:
        _validate_sharding(
            n_shards, update_style, backend, partitioner, workers, halo
        )
        super().__init__(
            num_classes=num_classes,
            alpha=alpha,
            beta=beta,
            gamma=gamma,
            tau=tau,
            window=window,
            max_iterations=max_iterations,
            tolerance=tolerance,
            patience=patience,
            seed=seed,
            track_history=track_history,
            update_style=update_style,
            state_smoothing=state_smoothing,
            kernel=kernel,
            dtype=dtype,
            spmm=spmm,
            spmm_threads=spmm_threads,
            objective_every=objective_every,
        )
        self.n_shards = n_shards
        self.partitioner = partitioner
        self.max_workers = max_workers
        self.backend = backend
        self.workers = workers
        self.consensus_iterations = consensus_iterations
        self.halo = halo
        self.last_plan: ShardedGraph | None = None
        #: Pool traffic/timing delta for the most recent snapshot solve
        #: (a :meth:`~repro.utils.executor.PoolTelemetry.delta` dict),
        #: or ``None`` before the first one.
        self.last_telemetry: dict | None = None
        #: Optional externally-owned pool (e.g. the serving engine's).
        #: When set, partial_fits run on it and never shut it down —
        #: this also skips the per-snapshot churn of opening a fresh
        #: pool (threads or worker processes) every step.  When None,
        #: each step owns its pool.
        self.pool: WorkerPool | None = None

    def _optimize(
        self,
        graph: TripartiteGraph,
        factors: FactorSet,
        sfw: np.ndarray | None,
        su_prior: np.ndarray | None,
        evolving_rows: np.ndarray,
    ) -> "OnlineTriClustering._OptimizeOutput":
        # Same cast sequence as the plain solver's _optimize (no-ops in
        # the float64 default) for 1-shard bit-identity in either dtype.
        kernel = resolve_kernel_name(self.kernel)
        spmm = resolve_spmm_name(self.spmm)
        graph = graph.astype(self._np_dtype)
        factors = factors.astype(self._np_dtype)
        if sfw is not None:
            sfw = sfw.astype(self._np_dtype, copy=False)
        if su_prior is not None:
            su_prior = su_prior.astype(self._np_dtype, copy=False)
        sf_prior = sfw if sfw is not None else graph.sf0
        n_shards = resolve_shard_count(
            self.n_shards, graph.num_users, self.max_workers
        )
        sharded = extract_shard_blocks(
            graph,
            make_partition(graph, n_shards, self.partitioner),
            halo=self.halo == "on",
        )

        pool = (
            self.pool
            if self.pool is not None
            else open_solver_pool(
                self.max_workers, self.backend, n_shards, self.workers
            )
        )
        try:
            telemetry_before = pool.telemetry.snapshot()
            solver = ShardedSolver(
                sharded,
                factors,
                pool,
                update_style=self.update_style,
                su_prior=su_prior,
                evolving_rows=evolving_rows,
                kernel=kernel,
                spmm=spmm,
                spmm_threads=self.spmm_threads,
            )
            history, converged, iterations_run = solver.solve_online(
                self.weights,
                sf_prior,
                max_iterations=self.max_iterations,
                tolerance=self.tolerance,
                patience=self.patience,
                track_history=self.track_history,
                objective_every=self.objective_every,
                su_prior_active=su_prior is not None,
            )
            merged = solver.merged_factors(self.consensus_iterations)
            self.last_telemetry = pool.telemetry.delta(telemetry_before)
        finally:
            if pool is not self.pool:
                pool.shutdown()
            else:
                # Externally-owned pool: release the graph-sized shard
                # states now rather than pinning them until the next
                # snapshot (worker processes themselves persist).
                pool.discard_resident()
        self.last_plan = sharded
        return self._OptimizeOutput(
            factors=merged,
            history=history,
            converged=converged,
            iterations=iterations_run,
        )
