"""Objective computation for Eq. (1) (offline) and Eq. (19) (online).

Loss components are evaluated without densifying the sparse data
matrices, using the trace expansion
``||X − A·H·Bᵀ||² = ||X||² − 2·tr(Xᵀ·A·H·Bᵀ) + tr(Bᵀ·B·Hᵀ·Aᵀ·A·H)``
so the cost stays ``O(nnz·k + (n+m+l)·k²)`` per evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.core.state import FactorSet
from repro.utils.matrices import frobenius_sq

MatrixLike = np.ndarray | sp.spmatrix


@dataclass(frozen=True)
class ObjectiveWeights:
    """Regularization weights of the objective.

    ``alpha`` scales the lexicon/temporal feature prior, ``beta`` the
    user-graph smoothness, ``gamma`` the evolving-user temporal term
    (online only; 0 reduces Eq. (19) to Eq. (1) plus warm starts).
    """

    alpha: float = 0.05
    beta: float = 0.8
    gamma: float = 0.0

    def __post_init__(self) -> None:
        for name in ("alpha", "beta", "gamma"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")


@dataclass(frozen=True)
class ObjectiveValue:
    """Component-wise objective values (all ≥ 0)."""

    tweet_loss: float      # Eq. (2):  ||Xp − Sp·Hp·Sfᵀ||²
    user_loss: float       # Eq. (3):  ||Xu − Su·Hu·Sfᵀ||²
    retweet_loss: float    # Eq. (4):  ||Xr − Su·Spᵀ||²
    lexicon_loss: float    # Eq. (5):  α·||Sf − Sf0||²
    graph_loss: float      # Eq. (6):  β·tr(Suᵀ·Lu·Su)
    temporal_loss: float   # Eq. (19): γ·||Su(d,e) − Suw||²

    @property
    def total(self) -> float:
        return (
            self.tweet_loss
            + self.user_loss
            + self.retweet_loss
            + self.lexicon_loss
            + self.graph_loss
            + self.temporal_loss
        )


@dataclass(frozen=True)
class ObjectiveStatics:
    """Per-matrix constants reused across objective evaluations.

    ``||X||²`` and the CSR-materialized transposes depend only on the
    data matrices, which are fixed for a whole fit — but the objective
    is evaluated every sweep, and recomputing them dominates the
    evaluation cost on small shard blocks.  CSR-transposing changes
    neither values nor accumulation order, so evaluations through a
    statics bundle are bit-identical to the lazy path (tested).
    """

    xp_sq: float
    xu_sq: float
    xr_sq: float
    xp_T: MatrixLike
    xu_T: MatrixLike

    @classmethod
    def from_matrices(
        cls, xp: MatrixLike, xu: MatrixLike, xr: MatrixLike
    ) -> "ObjectiveStatics":
        return cls(
            xp_sq=frobenius_sq(xp),
            xu_sq=frobenius_sq(xu),
            xr_sq=frobenius_sq(xr),
            xp_T=xp.T.tocsr() if sp.issparse(xp) else np.asarray(xp).T,
            xu_T=xu.T.tocsr() if sp.issparse(xu) else np.asarray(xu).T,
        )


def _dot(x: MatrixLike, dense: np.ndarray, spmm: object | None) -> np.ndarray:
    """``x @ dense`` through an optional spmm engine (bit-identical)."""
    if spmm is not None:
        return spmm.matmul(x, dense)
    # repro-lint: disable=REP001 -- the sanctioned scipy-reference fallback
    # used when no spmm engine is configured; engines match it bit for bit.
    return np.asarray(x @ dense)


def trifactor_loss(
    x: MatrixLike,
    a: np.ndarray,
    h: np.ndarray,
    b: np.ndarray,
    x_sq: float | None = None,
    x_T: MatrixLike | None = None,
    spmm: object | None = None,
) -> float:
    """``||X − A·H·Bᵀ||²`` without densifying ``X``.

    ``x_sq``/``x_T`` optionally supply the precomputed ``||X||²`` and
    transpose (see :class:`ObjectiveStatics`); ``spmm`` an optional
    :class:`~repro.core.spmm.SpmmEngine` for the sparse cross term.
    """
    ah = a @ h
    if x_T is None:
        x_T = x.T if sp.issparse(x) else np.asarray(x).T
    cross = float(np.sum(_dot(x_T, ah, spmm) * b))
    gram = (b.T @ b) @ (h.T @ (a.T @ a) @ h)
    if x_sq is None:
        x_sq = frobenius_sq(x)
    return max(x_sq - 2.0 * cross + float(np.trace(gram)), 0.0)


def bifactor_loss(
    x: MatrixLike,
    a: np.ndarray,
    b: np.ndarray,
    x_sq: float | None = None,
    spmm: object | None = None,
) -> float:
    """``||X − A·Bᵀ||²`` without densifying ``X``."""
    cross = float(np.sum(_dot(x, b, spmm) * a))
    gram = (a.T @ a) @ (b.T @ b)
    if x_sq is None:
        x_sq = frobenius_sq(x)
    return max(x_sq - 2.0 * cross + float(np.trace(gram)), 0.0)


def graph_penalty(
    su: np.ndarray,
    laplacian: MatrixLike,
    spmm: object | None = None,
) -> float:
    """``tr(Suᵀ·Lu·Su)`` (non-negative for a PSD Laplacian)."""
    return max(float(np.sum(su * _dot(laplacian, su, spmm))), 0.0)


def compute_objective(
    factors: FactorSet,
    xp: MatrixLike,
    xu: MatrixLike,
    xr: MatrixLike,
    laplacian: MatrixLike,
    weights: ObjectiveWeights,
    sf_prior: np.ndarray | None = None,
    su_prior: np.ndarray | None = None,
    su_prior_rows: np.ndarray | None = None,
    statics: ObjectiveStatics | None = None,
    spmm: object | None = None,
    gu_halo: MatrixLike | None = None,
    su_halo: np.ndarray | None = None,
) -> ObjectiveValue:
    """Evaluate every component of the (offline or online) objective.

    Parameters
    ----------
    sf_prior:
        ``Sf0`` offline, ``Sfw(t)`` online; ``None`` drops the α term.
    su_prior / su_prior_rows:
        Online only: decayed user history ``Suw(t)`` and the row indices
        (evolving users) it constrains.  ``None`` drops the γ term.
    statics:
        Optional precomputed data-matrix constants; evaluations with and
        without them are bit-identical (the sharded solver evaluates the
        objective once per shard per sweep and amortizes these).
    spmm:
        Optional :class:`~repro.core.spmm.SpmmEngine` for the sparse
        products (float64 bit-identical, speed-only).
    gu_halo, su_halo:
        Sharded cut-edge remainder: the halo CSR block and the
        exchanged neighbour ``Su`` rows.  The graph term becomes
        ``tr(Suᵀ(Dfull − Gblock)Su) − Σ Su∘(Gu_halo·Su_halo)`` — each
        cut edge contributes half its full-graph penalty from each
        endpoint shard, so shard-summed graph losses reproduce the
        unsharded ``tr(SuᵀLuSu)`` exactly.  A single shard's cross term
        is *not* clamped (it can exceed the local part transiently);
        only the shard sum is guaranteed non-negative.
    """
    if statics is None:
        tweet_loss = trifactor_loss(
            xp, factors.sp, factors.hp, factors.sf, spmm=spmm
        )
        user_loss = trifactor_loss(
            xu, factors.su, factors.hu, factors.sf, spmm=spmm
        )
        retweet_loss = bifactor_loss(xr, factors.su, factors.sp, spmm=spmm)
    else:
        tweet_loss = trifactor_loss(
            xp, factors.sp, factors.hp, factors.sf,
            x_sq=statics.xp_sq, x_T=statics.xp_T, spmm=spmm,
        )
        user_loss = trifactor_loss(
            xu, factors.su, factors.hu, factors.sf,
            x_sq=statics.xu_sq, x_T=statics.xu_T, spmm=spmm,
        )
        retweet_loss = bifactor_loss(
            xr, factors.su, factors.sp, x_sq=statics.xr_sq, spmm=spmm
        )

    lexicon_loss = 0.0
    if sf_prior is not None and weights.alpha > 0:
        diff = factors.sf - sf_prior
        lexicon_loss = weights.alpha * float(np.sum(diff * diff))

    graph_loss = 0.0
    if weights.beta > 0:
        penalty = graph_penalty(factors.su, laplacian, spmm=spmm)
        if gu_halo is not None and su_halo is not None and gu_halo.nnz:
            penalty -= float(
                np.sum(factors.su * _dot(gu_halo, su_halo, spmm))
            )
        graph_loss = weights.beta * penalty

    temporal_loss = 0.0
    if su_prior is not None and weights.gamma > 0:
        rows = (
            su_prior_rows
            if su_prior_rows is not None
            else np.arange(factors.su.shape[0])
        )
        diff = factors.su[rows] - su_prior
        temporal_loss = weights.gamma * float(np.sum(diff * diff))

    return ObjectiveValue(
        tweet_loss=tweet_loss,
        user_loss=user_loss,
        retweet_loss=retweet_loss,
        lexicon_loss=lexicon_loss,
        graph_loss=graph_loss,
        temporal_loss=temporal_loss,
    )
