"""Unified tri-clustering with pluggable regularizers (Section 7).

:class:`UnifiedTriClustering` generalizes the offline solver: the three
data-fit terms of Eq. (1) stay fixed, while *any* combination of
:mod:`repro.core.regularizers` instances replaces the hard-wired α/β
terms.  With ``[PriorCloseness("sf", Sf0, α), GraphSmoothness("su", Gu,
β)]`` it reproduces Algorithm 1 exactly; adding ``Sparsity``,
``Diversity`` or ``GuidedLabels`` yields the extended framework the paper
proposes for community detection / transfer learning / role mining.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.initialization import lexicon_seeded_factors, random_factors
from repro.core.kernels import resolve_kernel, validate_kernel
from repro.core.objective import bifactor_loss, trifactor_loss
from repro.core.regularizers import Regularizer
from repro.core.spmm import (
    resolve_spmm,
    validate_spmm,
    validate_spmm_threads,
)
from repro.core.state import FactorSet
from repro.core.sweepcache import SweepCache
from repro.core.updates import _project, update_hp, update_hu
from repro.graph.tripartite import TripartiteGraph
from repro.utils.rng import RandomState, spawn_rng


@dataclass
class UnifiedResult:
    """Output of a unified fit."""

    factors: FactorSet
    totals: list[float]
    regularizer_values: list[dict[str, float]]
    iterations: int
    converged: bool

    def tweet_sentiments(self) -> np.ndarray:
        return self.factors.tweet_clusters()

    def user_sentiments(self) -> np.ndarray:
        return self.factors.user_clusters()

    def feature_sentiments(self) -> np.ndarray:
        return self.factors.feature_clusters()


class UnifiedTriClustering:
    """Offline tri-clustering with an arbitrary regularizer stack."""

    def __init__(
        self,
        num_classes: int = 3,
        regularizers: Sequence[Regularizer] = (),
        max_iterations: int = 200,
        tolerance: float = 1e-6,
        patience: int = 3,
        seed: RandomState = None,
        kernel: object = "auto",
        spmm: object = "auto",
        spmm_threads: int | None = None,
    ) -> None:
        if num_classes < 2:
            raise ValueError(f"num_classes must be >= 2, got {num_classes}")
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        self.num_classes = num_classes
        self.regularizers = list(regularizers)
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.patience = patience
        self.seed = seed
        validate_kernel(kernel)
        self.kernel = kernel
        validate_spmm(spmm)
        validate_spmm_threads(spmm_threads)
        self.spmm = spmm
        self.spmm_threads = spmm_threads

    # ------------------------------------------------------------------ #

    def fit(
        self,
        graph: TripartiteGraph,
        initial_factors: FactorSet | None = None,
    ) -> UnifiedResult:
        """Run the unified solver on a tripartite graph."""
        rng = spawn_rng(self.seed)
        xp, xu, xr = graph.xp, graph.xu, graph.xr

        if initial_factors is not None:
            factors = initial_factors.copy()
        elif graph.sf0 is not None and graph.sf0.shape[1] == self.num_classes:
            factors = lexicon_seeded_factors(
                graph.num_tweets, graph.num_users, graph.sf0, seed=rng
            )
        else:
            factors = random_factors(
                graph.num_tweets,
                graph.num_users,
                graph.num_features,
                self.num_classes,
                seed=rng,
            )

        totals: list[float] = []
        regularizer_values: list[dict[str, float]] = []
        converged = False
        iterations_run = 0
        kernel = resolve_kernel(self.kernel, threads=self.spmm_threads)
        spmm_engine = resolve_spmm(self.spmm, self.spmm_threads)
        cache = SweepCache(xp, xu, xr, spmm=spmm_engine)
        for iteration in range(self.max_iterations):
            self._sweep(factors, xp, xu, xr, cache, kernel)
            iterations_run = iteration + 1

            total, values = self._objective(
                factors, xp, xu, xr, spmm_engine
            )
            totals.append(total)
            regularizer_values.append(values)
            if self._converged(totals):
                converged = True
                break

        return UnifiedResult(
            factors=factors,
            totals=totals,
            regularizer_values=regularizer_values,
            iterations=iterations_run,
            converged=converged,
        )

    # ------------------------------------------------------------------ #

    def _sweep(
        self, factors: FactorSet, xp, xu, xr, cache: SweepCache, kernel
    ) -> None:
        """One full update sweep in Algorithm 1's order."""
        # Sp: attraction from words and retweeters.
        xr_T = cache.xr_T()
        attraction = cache.xp_sf(factors.sf) @ factors.hp.T + cache.dot(
            xr.T if xr_T is None else xr_T, factors.su
        )
        numerator, denominator = self._regularized(
            "sp", factors, attraction, _project(factors.sp, attraction)
        )
        factors.sp = kernel.multiply_tail(factors.sp, numerator, denominator)

        factors.hp = update_hp(
            factors.hp, factors.sp, factors.sf, xp, cache=cache, kernel=kernel
        )

        # Su: attraction from words and posted/retweeted tweets.
        attraction = cache.xu_sf(factors.sf) @ factors.hu.T + cache.dot(
            xr, factors.sp
        )
        numerator, denominator = self._regularized(
            "su", factors, attraction, _project(factors.su, attraction)
        )
        factors.su = kernel.multiply_tail(factors.su, numerator, denominator)

        factors.hu = update_hu(
            factors.hu, factors.su, factors.sf, xu, cache=cache, kernel=kernel
        )

        # Sf: attraction from tweet and user usage.
        xp_T, xu_T = cache.xp_T(), cache.xu_T()
        attraction = cache.dot(
            xp.T if xp_T is None else xp_T, factors.sp
        ) @ factors.hp + cache.dot(
            xu.T if xu_T is None else xu_T, factors.su
        ) @ factors.hu
        numerator, denominator = self._regularized(
            "sf", factors, attraction, _project(factors.sf, attraction)
        )
        factors.sf = kernel.multiply_tail(factors.sf, numerator, denominator)

    def _regularized(
        self,
        target: str,
        factors: FactorSet,
        numerator: np.ndarray,
        denominator: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fold matching regularizers into an update's terms."""
        for regularizer in self.regularizers:
            if regularizer.target != target or regularizer.weight == 0.0:
                continue
            extra_numerator, extra_denominator = regularizer.update_terms(
                factors
            )
            numerator = numerator + extra_numerator
            denominator = denominator + extra_denominator
        return numerator, denominator

    def _objective(
        self, factors: FactorSet, xp, xu, xr, spmm=None
    ) -> tuple[float, dict[str, float]]:
        total = (
            trifactor_loss(xp, factors.sp, factors.hp, factors.sf, spmm=spmm)
            + trifactor_loss(xu, factors.su, factors.hu, factors.sf, spmm=spmm)
            + bifactor_loss(xr, factors.su, factors.sp, spmm=spmm)
        )
        values: dict[str, float] = {}
        for index, regularizer in enumerate(self.regularizers):
            value = regularizer.objective(factors)
            key = f"{type(regularizer).__name__.lower()}_{regularizer.target}_{index}"
            values[key] = value
            total += value
        return total, values

    def _converged(self, totals: list[float]) -> bool:
        if len(totals) < self.patience + 1:
            return False
        for offset in range(self.patience):
            current = totals[-1 - offset]
            previous = totals[-2 - offset]
            if abs(previous - current) >= self.tolerance * max(
                abs(previous), 1e-30
            ):
                return False
        return True
