"""Per-sweep memoization of shared matrix products.

One cyclic sweep of the multiplicative updates (Algorithm 1 order
``Sp, Hp, Su, Hu, Sf``; Algorithm 2 order ``Sf, Sp, Hp, Hu, Su``)
recomputes several products whose inputs have not changed between the
individual update calls:

- ``Xp·Sf`` appears in both the ``Sp`` and ``Hp`` updates,
- ``Xu·Sf`` appears in both the ``Su`` and ``Hu`` updates,
- ``Sfᵀ·Sf`` appears in the ``Hp`` and ``Hu`` denominators (and in
  every Lagrangian-style ``Δ`` assembly),
- the factor grams ``Spᵀ·Sp`` / ``Suᵀ·Su`` and the association grams
  ``H·(SfᵀSf)·Hᵀ`` recur across the Lagrangian-style updates.

The sparse-dense products dominate the sweep cost (``O(nnz·k)`` each),
so computing each of them once per sweep instead of twice is a direct
hot-path win without changing a single floating-point operation: the
cache returns the *same* array the uncached code path would have
computed, so solver trajectories are bit-identical.

Beyond the per-sweep memo, the cache also holds *per-solve* CSR
materializations of the data-matrix transposes (``Xrᵀ``, ``Xpᵀ``,
``Xuᵀ``).  The lazy ``.T`` view of a CSR matrix is CSC, and a
CSC @ dense product scatters into its (potentially huge) output instead
of streaming through it row by row; materializing the transpose as CSR
once per solve makes every subsequent ``Xrᵀ·Su`` / ``Xpᵀ·Sp`` /
``Xuᵀ·Su`` product a sequential-write CSR product.  CSR-materializing a
transpose changes neither the values nor the per-row accumulation order
of those products, so results stay bitwise identical (the same fact the
sharded path and :class:`repro.core.objective.ObjectiveStatics` already
rely on, and test).

Which layout is *faster* depends on scale, so the transpose accessors
apply a working-set policy (see :data:`TRANSPOSE_OPERAND_BUDGET`): the
CSR form gathers random rows of its dense operand and wins only while
that operand is cache-resident; once factors outgrow the cache, the CSC
view wins — it streams the dense operand sequentially and scatters into
an output that is itself small (``l×k`` or ``n×k`` against a much
larger operand).  Above the budget the accessors return ``None`` and
callers fall back to the lazy view.  Both paths being bitwise equal,
the policy is purely a speed decision — it can never change a result.

A :class:`SweepCache` is keyed by *object identity* of the dependency
factors.  Every update rule returns a freshly allocated array, so a
factor that changed between two lookups never aliases its predecessor;
holding a reference to the dependency inside the memo keeps ``is``
comparisons sound (the id cannot be recycled while the entry lives).
Solvers create one cache per fit/partial_fit and simply pass it into
every update call — invalidation is automatic.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np
import scipy.sparse as sp

from repro.core.spmm import SpmmEngine, default_spmm

MatrixLike = np.ndarray | sp.spmatrix

#: Per-column byte budget for the dense operand of a materialized-CSR
#: transpose product (``Xpᵀ·Sp`` gathers rows of ``Sp``, ``Xrᵀ·Su`` and
#: ``Xuᵀ·Su`` rows of ``Su``).  Measured on CPU: the CSR gather wins
#: while ``operand_rows × itemsize`` stays within roughly one L2 of
#: per-column footprint, and loses — by up to 2x at hundreds of
#: thousands of rows — once the gathers turn into cache misses, where
#: the lazy CSC scatter-into-small-output path streams instead.  The
#: threshold is shape-and-itemsize deterministic, so every shard and
#: backend of one problem makes the same (bitwise-neutral) choice.
TRANSPOSE_OPERAND_BUDGET = 256 * 1024


class SweepCache:
    """Identity-memoized shared products for one solver run.

    Parameters
    ----------
    xp, xu:
        The (fixed) data matrices whose products are memoized.
    xr:
        Optional user-tweet incidence matrix.  When provided, ``Xrᵀ`` is
        materialized as CSR once per solve (see :meth:`xr_T`) so the
        per-sweep ``Xrᵀ·Su`` products stream instead of scatter.  The
        ``Xr·Sp`` product needs no help — ``Xr`` is already CSR.
    xp_T, xu_T:
        Optional pre-materialized CSR transposes of ``xp``/``xu``.
        Solvers that already built an
        :class:`~repro.core.objective.ObjectiveStatics` pass its
        transposes in, so the arrays are shared rather than
        re-materialized.
    spmm:
        Optional :class:`~repro.core.spmm.SpmmEngine` that evaluates the
        sparse·dense products routed through :meth:`dot` (``None`` uses
        the scipy reference engine).  Engines are bit-identical in
        float64, so the choice is speed-only; an engine with
        ``prefers_csr`` additionally overrides the transpose layout
        policy (see :meth:`_materialize_wins`) because its row-parallel
        fast path needs the materialized CSR form.
    """

    def __init__(
        self,
        xp: MatrixLike,
        xu: MatrixLike,
        xr: MatrixLike | None = None,
        xp_T: MatrixLike | None = None,
        xu_T: MatrixLike | None = None,
        spmm: SpmmEngine | None = None,
    ) -> None:
        self.xp = xp
        self.xu = xu
        self.xr = xr
        self.spmm = spmm if spmm is not None else default_spmm()
        self._xp_T = xp_T
        self._xu_T = xu_T
        self._xr_T: MatrixLike | None = None
        self._memo: dict[str, tuple[tuple[np.ndarray, ...], np.ndarray]] = {}
        self._hits = 0
        self._misses = 0

    def dot(self, x: MatrixLike, dense: np.ndarray) -> np.ndarray:
        """``x @ dense`` through this cache's spmm engine.

        The uncached-update call sites route their products here so one
        solver-level knob selects the engine for every product of a
        solve; engines are float64 bit-identical, so this never changes
        a result.
        """
        return self.spmm.matmul(x, dense)

    # ------------------------------------------------------------------ #
    # Memoization machinery
    # ------------------------------------------------------------------ #

    def _get(
        self,
        key: str,
        deps: tuple[np.ndarray, ...],
        compute: Callable[[], np.ndarray],
    ) -> np.ndarray:
        entry = self._memo.get(key)
        if entry is not None:
            cached_deps, value = entry
            if all(a is b for a, b in zip(cached_deps, deps)):
                self._hits += 1
                return value
        value = compute()
        self._memo[key] = (deps, value)
        self._misses += 1
        return value

    @property
    def hits(self) -> int:
        """Lookups answered from the memo (telemetry for benches/tests)."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lookups that had to compute (first use or stale dependency)."""
        return self._misses

    # ------------------------------------------------------------------ #
    # Sparse-dense products (the expensive ones)
    # ------------------------------------------------------------------ #

    def xp_sf(self, sf: np.ndarray) -> np.ndarray:
        """``Xp·Sf`` — shared by the ``Sp`` and ``Hp`` updates."""
        return self._get("xp_sf", (sf,), lambda: self.dot(self.xp, sf))

    def xu_sf(self, sf: np.ndarray) -> np.ndarray:
        """``Xu·Sf`` — shared by the ``Su`` and ``Hu`` updates."""
        return self._get("xu_sf", (sf,), lambda: self.dot(self.xu, sf))

    # ------------------------------------------------------------------ #
    # Per-solve CSR transposes (bitwise-equal to the lazy ``.T`` views)
    # ------------------------------------------------------------------ #

    def _materialize_wins(self, operand_rows: int, itemsize: int) -> bool:
        """Working-set policy behind the transpose accessors.

        An spmm engine that ``prefers_csr`` overrides the budget: its
        row-parallel fast path only engages on materialized CSR (a lazy
        CSC view falls back to scipy's serial product), and the parallel
        win dominates the gather-vs-stream trade the budget models.
        Either layout is bitwise equal, so this stays speed-only.
        """
        if self.spmm.prefers_csr:
            return True
        return operand_rows * itemsize <= TRANSPOSE_OPERAND_BUDGET

    def xr_T(self) -> MatrixLike | None:
        """CSR-materialized ``Xrᵀ``, or ``None`` to use the lazy view.

        ``None`` means either no ``xr`` was given or the dense operand
        of the ``Xrᵀ·Su`` product (``Su``, one row per ``xr`` row) is
        past :data:`TRANSPOSE_OPERAND_BUDGET`; callers fall back to the
        lazy ``xr.T`` view.  The two are bitwise interchangeable, so the
        choice is speed-only.
        """
        if self.xr is None:
            return None
        if not self._materialize_wins(
            self.xr.shape[0], self.xr.dtype.itemsize
        ):
            return None
        if self._xr_T is None:
            self._xr_T = (
                self.xr.T.tocsr() if sp.issparse(self.xr) else self.xr.T
            )
        return self._xr_T

    def xp_T(self) -> MatrixLike | None:
        """CSR-materialized ``Xpᵀ``, or ``None`` to use the lazy view.

        The ``Xpᵀ·Sp`` operand is ``Sp`` (one row per ``xp`` row); past
        the budget the lazy CSC view streams it faster than the CSR
        gather, so ``None`` is returned even when a pre-materialized
        transpose was injected (the injected array still serves the
        objective statics it came from).
        """
        if not self._materialize_wins(
            self.xp.shape[0], self.xp.dtype.itemsize
        ):
            return None
        if self._xp_T is None:
            self._xp_T = (
                self.xp.T.tocsr() if sp.issparse(self.xp) else self.xp.T
            )
        return self._xp_T

    def xu_T(self) -> MatrixLike | None:
        """CSR-materialized ``Xuᵀ``, or ``None`` to use the lazy view."""
        if not self._materialize_wins(
            self.xu.shape[0], self.xu.dtype.itemsize
        ):
            return None
        if self._xu_T is None:
            self._xu_T = (
                self.xu.T.tocsr() if sp.issparse(self.xu) else self.xu.T
            )
        return self._xu_T

    # ------------------------------------------------------------------ #
    # Dense grams
    # ------------------------------------------------------------------ #

    def gram(self, name: str, factor: np.ndarray) -> np.ndarray:
        """``factorᵀ·factor`` memoized under slot ``name`` (sf/sp/su).

        The slot name only namespaces the memo entry; staleness is
        decided by the identity of ``factor`` itself.
        """
        return self._get(f"gram:{name}", (factor,), lambda: factor.T @ factor)

    def hp_gram(self, hp: np.ndarray, sf: np.ndarray) -> np.ndarray:
        """``Hp·(SfᵀSf)·Hpᵀ`` (Lagrangian-style ``Sp`` denominators)."""
        return self._get(
            "hp_gram", (hp, sf), lambda: hp @ self.gram("sf", sf) @ hp.T
        )

    def hu_gram(self, hu: np.ndarray, sf: np.ndarray) -> np.ndarray:
        """``Hu·(SfᵀSf)·Huᵀ`` (Lagrangian-style ``Su`` denominators)."""
        return self._get(
            "hu_gram", (hu, sf), lambda: hu @ self.gram("sf", sf) @ hu.T
        )

    def assoc_denominator(
        self, name: str, factor: np.ndarray, h: np.ndarray, sf: np.ndarray
    ) -> np.ndarray:
        """``(SᵀS)·H·(SfᵀSf)`` — the ``Hp``/``Hu`` denominator chain.

        Batches the small-gram evaluation of one association update into
        a single memo transaction: the factor gram, the ``Sf`` gram, and
        the two ``k×k`` chain products are produced (and keyed) together
        instead of as three independent lookups.  At small shard sizes —
        where Python/BLAS dispatch *is* the workload — this halves the
        per-update memo traffic; the expression and its left-to-right
        association order are exactly what the uncached code computed,
        so results are bit-identical.
        """

        def compute() -> np.ndarray:
            return self.gram(name, factor) @ h @ self.gram("sf", sf)

        return self._get(f"assoc_den:{name}", (factor, h, sf), compute)
