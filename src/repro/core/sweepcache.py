"""Per-sweep memoization of shared matrix products.

One cyclic sweep of the multiplicative updates (Algorithm 1 order
``Sp, Hp, Su, Hu, Sf``; Algorithm 2 order ``Sf, Sp, Hp, Hu, Su``)
recomputes several products whose inputs have not changed between the
individual update calls:

- ``Xp·Sf`` appears in both the ``Sp`` and ``Hp`` updates,
- ``Xu·Sf`` appears in both the ``Su`` and ``Hu`` updates,
- ``Sfᵀ·Sf`` appears in the ``Hp`` and ``Hu`` denominators (and in
  every Lagrangian-style ``Δ`` assembly),
- the factor grams ``Spᵀ·Sp`` / ``Suᵀ·Su`` and the association grams
  ``H·(SfᵀSf)·Hᵀ`` recur across the Lagrangian-style updates.

The sparse-dense products dominate the sweep cost (``O(nnz·k)`` each),
so computing each of them once per sweep instead of twice is a direct
hot-path win without changing a single floating-point operation: the
cache returns the *same* array the uncached code path would have
computed, so solver trajectories are bit-identical.

A :class:`SweepCache` is keyed by *object identity* of the dependency
factors.  Every update rule returns a freshly allocated array, so a
factor that changed between two lookups never aliases its predecessor;
holding a reference to the dependency inside the memo keeps ``is``
comparisons sound (the id cannot be recycled while the entry lives).
Solvers create one cache per fit/partial_fit and simply pass it into
every update call — invalidation is automatic.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np
import scipy.sparse as sp

MatrixLike = np.ndarray | sp.spmatrix


def _dot(x: MatrixLike, dense: np.ndarray) -> np.ndarray:
    """``x @ dense`` returning a plain ndarray for sparse or dense ``x``."""
    return np.asarray(x @ dense)


class SweepCache:
    """Identity-memoized shared products for one solver run.

    Parameters
    ----------
    xp, xu:
        The (fixed) data matrices whose products are memoized.  ``Xr``
        is not held here: its products (``Xrᵀ·Su``, ``Xr·Sp``) each
        occur once per sweep, so there is nothing to reuse.
    """

    def __init__(self, xp: MatrixLike, xu: MatrixLike) -> None:
        self.xp = xp
        self.xu = xu
        self._memo: dict[str, tuple[tuple[np.ndarray, ...], np.ndarray]] = {}
        self._hits = 0
        self._misses = 0

    # ------------------------------------------------------------------ #
    # Memoization machinery
    # ------------------------------------------------------------------ #

    def _get(
        self,
        key: str,
        deps: tuple[np.ndarray, ...],
        compute: Callable[[], np.ndarray],
    ) -> np.ndarray:
        entry = self._memo.get(key)
        if entry is not None:
            cached_deps, value = entry
            if all(a is b for a, b in zip(cached_deps, deps)):
                self._hits += 1
                return value
        value = compute()
        self._memo[key] = (deps, value)
        self._misses += 1
        return value

    @property
    def hits(self) -> int:
        """Lookups answered from the memo (telemetry for benches/tests)."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lookups that had to compute (first use or stale dependency)."""
        return self._misses

    # ------------------------------------------------------------------ #
    # Sparse-dense products (the expensive ones)
    # ------------------------------------------------------------------ #

    def xp_sf(self, sf: np.ndarray) -> np.ndarray:
        """``Xp·Sf`` — shared by the ``Sp`` and ``Hp`` updates."""
        return self._get("xp_sf", (sf,), lambda: _dot(self.xp, sf))

    def xu_sf(self, sf: np.ndarray) -> np.ndarray:
        """``Xu·Sf`` — shared by the ``Su`` and ``Hu`` updates."""
        return self._get("xu_sf", (sf,), lambda: _dot(self.xu, sf))

    # ------------------------------------------------------------------ #
    # Dense grams
    # ------------------------------------------------------------------ #

    def gram(self, name: str, factor: np.ndarray) -> np.ndarray:
        """``factorᵀ·factor`` memoized under slot ``name`` (sf/sp/su).

        The slot name only namespaces the memo entry; staleness is
        decided by the identity of ``factor`` itself.
        """
        return self._get(f"gram:{name}", (factor,), lambda: factor.T @ factor)

    def hp_gram(self, hp: np.ndarray, sf: np.ndarray) -> np.ndarray:
        """``Hp·(SfᵀSf)·Hpᵀ`` (Lagrangian-style ``Sp`` denominators)."""
        return self._get(
            "hp_gram", (hp, sf), lambda: hp @ self.gram("sf", sf) @ hp.T
        )

    def hu_gram(self, hu: np.ndarray, sf: np.ndarray) -> np.ndarray:
        """``Hu·(SfᵀSf)·Huᵀ`` (Lagrangian-style ``Su`` denominators)."""
        return self._get(
            "hu_gram", (hu, sf), lambda: hu @ self.gram("sf", sf) @ hu.T
        )
