"""Per-iteration loss tracking and convergence detection.

The paper's Figure 8 plots the Frobenius loss of Eq. (2) (tweet-feature
approximation), Eq. (3) (user-feature approximation) and the total
objective of Eq. (1) against iterations; :class:`ConvergenceHistory`
records exactly those traces so the figure can be regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.objective import ObjectiveValue


@dataclass(frozen=True)
class IterationRecord:
    """Objective snapshot after one full update sweep."""

    iteration: int
    objective: ObjectiveValue

    @property
    def total(self) -> float:
        return self.objective.total

    @property
    def tweet_loss(self) -> float:
        return self.objective.tweet_loss

    @property
    def user_loss(self) -> float:
        return self.objective.user_loss


@dataclass
class ConvergenceHistory:
    """Loss traces over the optimization run."""

    records: list[IterationRecord] = field(default_factory=list)

    def append(self, objective: ObjectiveValue) -> None:
        self.records.append(
            IterationRecord(iteration=len(self.records), objective=objective)
        )

    def __len__(self) -> int:
        return len(self.records)

    def __bool__(self) -> bool:
        # A history object is truthy even before any record lands.
        return True

    @property
    def totals(self) -> list[float]:
        """Total-objective trace (Figure 8c)."""
        return [record.total for record in self.records]

    @property
    def tweet_losses(self) -> list[float]:
        """Eq. (2) trace (Figure 8a)."""
        return [record.tweet_loss for record in self.records]

    @property
    def user_losses(self) -> list[float]:
        """Eq. (3) trace (Figure 8b)."""
        return [record.user_loss for record in self.records]

    @property
    def final(self) -> IterationRecord:
        if not self.records:
            raise ValueError("no iterations recorded")
        return self.records[-1]

    def converged(self, tolerance: float, window: int = 1) -> bool:
        """Relative-change convergence test on the total objective.

        True when the total objective changed by less than ``tolerance``
        (relatively) over each of the last ``window`` iterations.
        """
        if len(self.records) < window + 1:
            return False
        for offset in range(window):
            current = self.records[-1 - offset].total
            previous = self.records[-2 - offset].total
            denom = max(abs(previous), 1e-30)
            if abs(previous - current) / denom >= tolerance:
                return False
        return True
