"""Offline tri-clustering — Algorithm 1.

Solves Eq. (1) by cyclic multiplicative updates in the paper's order
(Sp, Hp, Su, Hu, Sf), tracking the component losses each sweep.  The
result object exposes hard/soft sentiment readouts for tweets, users and
features.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.convergence import ConvergenceHistory
from repro.core.initialization import lexicon_seeded_factors, random_factors
from repro.core.kernels import resolve_dtype, resolve_kernel, validate_kernel
from repro.core.objective import (
    ObjectiveStatics,
    ObjectiveWeights,
    compute_objective,
)
from repro.core.spmm import (
    resolve_spmm,
    validate_spmm,
    validate_spmm_threads,
)
from repro.core.state import FactorSet
from repro.core.sweepcache import SweepCache
from repro.core.updates import (
    update_hp,
    update_hu,
    update_sf,
    update_sp,
    update_su,
)
from repro.graph.tripartite import TripartiteGraph
from repro.utils.logging import get_logger
from repro.utils.rng import RandomState, spawn_rng

logger = get_logger("core.offline")


@dataclass
class TriClusteringResult:
    """Output of one tri-clustering fit."""

    factors: FactorSet
    history: ConvergenceHistory
    converged: bool
    iterations: int

    def tweet_sentiments(self) -> np.ndarray:
        """Hard tweet cluster ids (columns anchored by ``Sf0`` when used)."""
        return self.factors.tweet_clusters()

    def user_sentiments(self) -> np.ndarray:
        """Hard user cluster ids."""
        return self.factors.user_clusters()

    def feature_sentiments(self) -> np.ndarray:
        """Hard feature cluster ids."""
        return self.factors.feature_clusters()

    @property
    def final_objective(self) -> float:
        return self.history.final.total


class OfflineTriClustering:
    """Algorithm 1: the offline tri-clustering solver.

    Parameters
    ----------
    num_classes:
        ``k`` — number of sentiment classes (2 or 3; the paper uses both).
    alpha:
        Weight of the lexicon prior term ``α·||Sf − Sf0||²`` (Eq. 5).
        The paper's balanced choice is 0.05 (Section 5.1).
    beta:
        Weight of the user-graph smoothness ``β·tr(SuᵀLuSu)`` (Eq. 6);
        paper choice 0.8.
    max_iterations / tolerance / patience:
        Stopping: at most ``max_iterations`` sweeps, or earlier when the
        relative total-objective change stays below ``tolerance`` for
        ``patience`` consecutive sweeps.
    seed:
        Seed for factor initialization.
    track_history:
        Record per-iteration losses (needed for Figure 8; small cost).
    update_style:
        ``"projector"`` (stable Ding-style closed form, default) or
        ``"lagrangian"`` (the paper's literal Δ-split derivation form);
        see :mod:`repro.core.updates`.
    kernel:
        ``"auto"`` (numba when importable, NumPy otherwise), ``"numpy"``,
        ``"numba"``, or a :class:`~repro.core.kernels.Kernel` instance.
        Kernels are bit-compatible in float64, so this affects speed only.
    dtype:
        ``"float64"`` (default, bit-identity guarantees) or ``"float32"``
        (opt-in bandwidth-saving mode; results track float64 within a
        documented tolerance — see ``tests/core/test_kernels.py``).
    spmm:
        Sparse·dense product engine: ``"auto"`` (numba when importable,
        scipy otherwise), ``"scipy"``, ``"threads"``, ``"numba"``, or an
        :class:`~repro.core.spmm.SpmmEngine` instance.  Engines are
        float64 bit-identical (see :mod:`repro.core.spmm`), so this
        affects speed only.
    spmm_threads:
        Thread budget for the parallel spmm engines and the numba kernel
        tails; ``None`` uses the process default (worker fair share or
        the affinity core count — see
        :func:`repro.utils.threads.spmm_thread_default`).
    objective_every:
        Evaluate the objective every this many sweeps (default 1 =
        every sweep, the paper's loop).  Larger values trade convergence
        granularity for per-sweep cost — convergence can only be
        detected at evaluated sweeps — and the final sweep is always
        evaluated so the recorded history ends at the returned factors.
    """

    def __init__(
        self,
        num_classes: int = 3,
        alpha: float = 0.05,
        beta: float = 0.8,
        max_iterations: int = 200,
        tolerance: float = 1e-6,
        patience: int = 3,
        seed: RandomState = None,
        track_history: bool = True,
        update_style: str = "projector",
        kernel: object = "auto",
        dtype: str = "float64",
        spmm: object = "auto",
        spmm_threads: int | None = None,
        objective_every: int = 1,
    ) -> None:
        if num_classes < 2:
            raise ValueError(f"num_classes must be >= 2, got {num_classes}")
        if alpha < 0 or beta < 0:
            raise ValueError("alpha and beta must be non-negative")
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if not isinstance(objective_every, int) or objective_every < 1:
            raise ValueError(
                f"objective_every must be an int >= 1, got {objective_every!r}"
            )
        self.num_classes = num_classes
        self.weights = ObjectiveWeights(alpha=alpha, beta=beta)
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.patience = patience
        self.seed = seed
        self.track_history = track_history
        if update_style not in ("projector", "lagrangian"):
            raise ValueError(f"unknown update_style: {update_style!r}")
        self.update_style = update_style
        validate_kernel(kernel)
        self.kernel = kernel
        self.dtype = dtype
        self._np_dtype = resolve_dtype(dtype)
        validate_spmm(spmm)
        validate_spmm_threads(spmm_threads)
        self.spmm = spmm
        self.spmm_threads = spmm_threads
        self.objective_every = objective_every

    # ------------------------------------------------------------------ #

    def _validate_prior(self, graph: TripartiteGraph) -> None:
        sf0 = graph.sf0
        if sf0 is not None and sf0.shape[1] != self.num_classes:
            raise ValueError(
                f"Sf0 has {sf0.shape[1]} classes, solver expects "
                f"{self.num_classes}"
            )

    def _initial_factors(
        self,
        graph: TripartiteGraph,
        rng: np.random.Generator,
        initial_factors: FactorSet | None,
    ) -> FactorSet:
        """Algorithm 1 line 1, shared by the plain and sharded solvers.

        The sharded solver initializes *globally* through this exact
        code path (then scatters rows to shards), so its draw sequence —
        and therefore its 1-shard trajectory — matches the plain solver
        bit for bit, and its multi-shard start is independent of the
        partition.
        """
        if initial_factors is not None:
            return initial_factors.copy()
        if graph.sf0 is not None:
            return lexicon_seeded_factors(
                graph.num_tweets, graph.num_users, graph.sf0, seed=rng
            )
        return random_factors(
            graph.num_tweets,
            graph.num_users,
            graph.num_features,
            self.num_classes,
            seed=rng,
        )

    def fit(
        self,
        graph: TripartiteGraph,
        initial_factors: FactorSet | None = None,
    ) -> TriClusteringResult:
        """Run Algorithm 1 on a :class:`TripartiteGraph`."""
        rng = spawn_rng(self.seed)
        kernel = resolve_kernel(self.kernel, threads=self.spmm_threads)
        spmm_engine = resolve_spmm(self.spmm, self.spmm_threads)
        graph = graph.astype(self._np_dtype)  # no-op in the float64 default
        xp, xu, xr = graph.xp, graph.xu, graph.xr
        gu = graph.user_graph.adjacency
        du = graph.user_graph.degree_matrix
        laplacian = graph.user_graph.laplacian
        sf0 = graph.sf0

        self._validate_prior(graph)
        factors = self._initial_factors(graph, rng, initial_factors).astype(
            self._np_dtype
        )

        history = ConvergenceHistory()
        converged = False
        iterations_run = 0
        # ‖X‖² and the CSR transposes are fixed for the whole fit but the
        # objective is evaluated every sweep; bundling them once removes
        # the dominant constant from each evaluation without changing a
        # single floating-point value (see ObjectiveStatics).
        statics = ObjectiveStatics.from_matrices(xp, xu, xr)
        # The sweep cache shares the statics' CSR transposes so the
        # Sf-update products stream row-wise without re-materializing.
        cache = SweepCache(
            xp, xu, xr, xp_T=statics.xp_T, xu_T=statics.xu_T,
            spmm=spmm_engine,
        )
        for iteration in range(self.max_iterations):
            # Algorithm 1 order: Sp, Hp, Su, Hu, Sf.
            factors.sp = update_sp(
                factors.sp, factors.sf, factors.hp, factors.su, xp, xr,
                style=self.update_style, cache=cache, kernel=kernel,
            )
            factors.hp = update_hp(
                factors.hp, factors.sp, factors.sf, xp, cache=cache,
                kernel=kernel,
            )
            factors.su = update_su(
                factors.su,
                factors.sf,
                factors.hu,
                factors.sp,
                xu,
                xr,
                gu,
                du,
                self.weights.beta,
                style=self.update_style,
                cache=cache,
                kernel=kernel,
            )
            factors.hu = update_hu(
                factors.hu, factors.su, factors.sf, xu, cache=cache,
                kernel=kernel,
            )
            factors.sf = update_sf(
                factors.sf,
                factors.sp,
                factors.hp,
                factors.su,
                factors.hu,
                xp,
                xu,
                sf0,
                self.weights.alpha,
                style=self.update_style,
                cache=cache,
                kernel=kernel,
            )
            iterations_run = iteration + 1

            if (
                (self.track_history or self.tolerance > 0)
                and iterations_run % self.objective_every == 0
            ):
                objective = compute_objective(
                    factors, xp, xu, xr, laplacian, self.weights,
                    sf_prior=sf0, statics=statics, spmm=spmm_engine,
                )
                history.append(objective)
                if history.converged(self.tolerance, window=self.patience):
                    converged = True
                    logger.debug(
                        "converged after %d iterations (total=%.6g)",
                        iterations_run,
                        objective.total,
                    )
                    break

        if (
            (self.track_history or self.tolerance > 0)
            and iterations_run % self.objective_every != 0
        ):
            # objective_every > 1 skipped the final sweep: record it so
            # the history always ends at the returned factors.
            history.append(
                compute_objective(
                    factors, xp, xu, xr, laplacian, self.weights,
                    sf_prior=sf0, statics=statics, spmm=spmm_engine,
                )
            )
            if history.converged(self.tolerance, window=self.patience):
                converged = True
        if not history.records:
            # History disabled and tolerance 0: record the final state once.
            history.append(
                compute_objective(
                    factors, xp, xu, xr, laplacian, self.weights,
                    sf_prior=sf0, statics=statics, spmm=spmm_engine,
                )
            )
        return TriClusteringResult(
            factors=factors,
            history=history,
            converged=converged,
            iterations=iterations_run,
        )
