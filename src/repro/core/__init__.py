"""The paper's primary contribution: tri-clustering solvers.

- :mod:`repro.core.state` — the factor bundle ``(Sf, Sp, Su, Hp, Hu)``.
- :mod:`repro.core.initialization` — random / lexicon-seeded / warm-start
  factor initialization.
- :mod:`repro.core.objective` — the loss components of Eq. (1)/(19).
- :mod:`repro.core.updates` — multiplicative update kernels
  (Eqs. 7, 9, 11, 12, 13 and online variants 20-26).
- :mod:`repro.core.sweepcache` — per-sweep memoization of the shared
  products the update kernels would otherwise recompute.
- :mod:`repro.core.convergence` — per-iteration loss tracking (Figure 8).
- :mod:`repro.core.offline` — Algorithm 1 (:class:`OfflineTriClustering`).
- :mod:`repro.core.online` — Algorithm 2 (:class:`OnlineTriClustering`).
- :mod:`repro.core.sharded` — user-partition sharded variants of both
  (:class:`ShardedTriClustering`, :class:`ShardedOnlineTriClustering`).
"""

from repro.core.convergence import ConvergenceHistory, IterationRecord
from repro.core.inference import (
    infer_tweet_memberships,
    infer_tweet_sentiments,
    infer_user_memberships,
    infer_user_sentiments,
)
from repro.core.labeling import apply_alignment, lexicon_column_alignment
from repro.core.objective import ObjectiveWeights, compute_objective
from repro.core.offline import OfflineTriClustering, TriClusteringResult
from repro.core.online import OnlineStepResult, OnlineTriClustering
from repro.core.regularizers import (
    Diversity,
    GraphSmoothness,
    GuidedLabels,
    PriorCloseness,
    Regularizer,
    Sparsity,
)
from repro.core.sharded import (
    ShardedOnlineTriClustering,
    ShardedSolver,
    ShardedTriClustering,
    resolve_shard_count,
)
from repro.core.state import FactorSet
from repro.core.sweepcache import SweepCache
from repro.core.unified import UnifiedResult, UnifiedTriClustering

__all__ = [
    "ConvergenceHistory",
    "Diversity",
    "GraphSmoothness",
    "GuidedLabels",
    "PriorCloseness",
    "Regularizer",
    "ShardedOnlineTriClustering",
    "ShardedSolver",
    "ShardedTriClustering",
    "Sparsity",
    "SweepCache",
    "UnifiedResult",
    "UnifiedTriClustering",
    "FactorSet",
    "IterationRecord",
    "ObjectiveWeights",
    "OfflineTriClustering",
    "OnlineStepResult",
    "OnlineTriClustering",
    "TriClusteringResult",
    "apply_alignment",
    "compute_objective",
    "infer_tweet_memberships",
    "infer_tweet_sentiments",
    "infer_user_memberships",
    "infer_user_sentiments",
    "lexicon_column_alignment",
    "resolve_shard_count",
]
