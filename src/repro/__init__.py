"""repro — Tripartite graph co-clustering for dynamic sentiment analysis.

A faithful, self-contained reproduction of

    Linhong Zhu, Aram Galstyan, James Cheng, Kristina Lerman.
    "Tripartite Graph Clustering for Dynamic Sentiment Analysis on
    Social Media." SIGMOD 2014 (arXiv:1402.6010).

Quickstart::

    from repro import (
        BallotDatasetGenerator, prop30_config,
        build_tripartite_graph, OfflineTriClustering,
        clustering_accuracy, align_clusters,
    )

    generator = BallotDatasetGenerator(prop30_config(scale=0.05), seed=7)
    corpus = generator.generate()
    graph = build_tripartite_graph(corpus, lexicon=generator.lexicon())
    result = OfflineTriClustering(seed=7).fit(graph)
    predicted = result.tweet_sentiments()
    print(clustering_accuracy(predicted, corpus.tweet_labels()))

See DESIGN.md for the architecture and EXPERIMENTS.md for the
paper-versus-measured reproduction record.
"""

from repro.core import (
    FactorSet,
    OfflineTriClustering,
    OnlineStepResult,
    OnlineTriClustering,
    ShardedOnlineTriClustering,
    ShardedTriClustering,
    TriClusteringResult,
)
from repro.data import (
    BallotDatasetConfig,
    BallotDatasetGenerator,
    Sentiment,
    Snapshot,
    SnapshotStream,
    Tweet,
    TweetCorpus,
    UserProfile,
    prop30_config,
    prop37_config,
)
from repro.engine import (
    EngineConfig,
    FoldInCache,
    SentimentService,
    SnapshotReport,
    StreamingSentimentEngine,
)
from repro.eval import (
    align_clusters,
    clustering_accuracy,
    normalized_mutual_information,
)
from repro.graph import TripartiteGraph, build_tripartite_graph
from repro.text import (
    CountVectorizer,
    SentimentLexicon,
    TfidfVectorizer,
    TweetTokenizer,
    Vocabulary,
    build_sf0,
)

__version__ = "1.1.0"

__all__ = [
    "BallotDatasetConfig",
    "BallotDatasetGenerator",
    "CountVectorizer",
    "EngineConfig",
    "FactorSet",
    "FoldInCache",
    "OfflineTriClustering",
    "OnlineStepResult",
    "OnlineTriClustering",
    "Sentiment",
    "SentimentLexicon",
    "SentimentService",
    "ShardedOnlineTriClustering",
    "ShardedTriClustering",
    "Snapshot",
    "SnapshotReport",
    "SnapshotStream",
    "StreamingSentimentEngine",
    "TfidfVectorizer",
    "TriClusteringResult",
    "TripartiteGraph",
    "Tweet",
    "TweetCorpus",
    "TweetTokenizer",
    "UserProfile",
    "Vocabulary",
    "align_clusters",
    "build_sf0",
    "build_tripartite_graph",
    "clustering_accuracy",
    "normalized_mutual_information",
    "prop30_config",
    "prop37_config",
]
