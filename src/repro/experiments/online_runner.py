"""Shared online-stream execution for the online experiments.

Runs :class:`~repro.core.online.OnlineTriClustering` over a corpus
snapshot stream and collects per-snapshot predictions, ground truth and
wall-clock runtimes — the raw material for Table 4/5's online rows and
Figures 9-12.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.online import OnlineTriClustering
from repro.data.stream import SnapshotStream, iter_tweet_batches
from repro.engine.config import EngineConfig
from repro.engine.streaming import StreamingSentimentEngine
from repro.eval.metrics import clustering_accuracy, normalized_mutual_information
from repro.eval.timing import Stopwatch
from repro.experiments.configs import ExperimentConfig
from repro.experiments.datasets import DatasetBundle
from repro.graph.tripartite import build_tripartite_graph


@dataclass
class SnapshotOutcome:
    """Per-snapshot evaluation record."""

    index: int
    start_day: int
    end_day: int
    num_tweets: int
    num_users: int
    runtime_seconds: float
    tweet_accuracy: float
    user_accuracy: float


@dataclass
class OnlineRunResult:
    """Aggregated outcome of one full stream run."""

    snapshots: list[SnapshotOutcome] = field(default_factory=list)
    tweet_predictions: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    tweet_truth: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    user_predictions: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    user_truth: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    total_runtime: float = 0.0

    @property
    def tweet_accuracy(self) -> float:
        return clustering_accuracy(self.tweet_predictions, self.tweet_truth)

    @property
    def tweet_nmi(self) -> float:
        return normalized_mutual_information(
            self.tweet_predictions, self.tweet_truth
        )

    @property
    def user_accuracy(self) -> float:
        return clustering_accuracy(self.user_predictions, self.user_truth)

    @property
    def user_nmi(self) -> float:
        return normalized_mutual_information(
            self.user_predictions, self.user_truth
        )


def run_online_stream(
    bundle: DatasetBundle,
    config: ExperimentConfig,
    **solver_overrides: object,
) -> OnlineRunResult:
    """Stream the bundle's corpus through the online solver.

    ``solver_overrides`` are passed to
    :class:`~repro.core.online.OnlineTriClustering` (used by the
    parameter-sweep experiments for α/τ/γ/w).
    """
    solver_kwargs: dict[str, object] = dict(
        max_iterations=config.online_max_iterations,
        seed=config.solver_seed,
    )
    solver_kwargs.update(solver_overrides)
    solver = OnlineTriClustering(**solver_kwargs)

    result = OnlineRunResult()
    tweet_preds: list[np.ndarray] = []
    tweet_truths: list[np.ndarray] = []
    watch = Stopwatch()
    stream = SnapshotStream(
        bundle.corpus, interval_days=config.online_interval_days
    )
    for snapshot in stream:
        graph = build_tripartite_graph(
            snapshot.corpus,
            vectorizer=bundle.vectorizer,
            lexicon=bundle.lexicon,
        )
        with watch:
            step = solver.partial_fit(graph)
        tweet_pred = step.tweet_sentiments()
        tweet_truth = snapshot.corpus.tweet_labels()
        tweet_preds.append(tweet_pred)
        tweet_truths.append(tweet_truth)

        # User accuracy at this point in time, over every user seen so
        # far (the paper's per-timestamp user-level readout).
        user_pred, user_truth = _user_arrays(
            solver, bundle, day=snapshot.end_day
        )
        result.snapshots.append(
            SnapshotOutcome(
                index=snapshot.index,
                start_day=snapshot.start_day,
                end_day=snapshot.end_day,
                num_tweets=snapshot.num_tweets,
                num_users=snapshot.num_users,
                runtime_seconds=watch.last,
                tweet_accuracy=clustering_accuracy(tweet_pred, tweet_truth),
                user_accuracy=clustering_accuracy(user_pred, user_truth),
            )
        )

    result.tweet_predictions = (
        np.concatenate(tweet_preds) if tweet_preds else np.empty(0, np.int64)
    )
    result.tweet_truth = (
        np.concatenate(tweet_truths) if tweet_truths else np.empty(0, np.int64)
    )
    final_day = bundle.corpus.day_range[1]
    result.user_predictions, result.user_truth = _user_arrays(
        solver, bundle, day=final_day
    )
    result.total_runtime = watch.total
    return result


def run_engine_stream(
    bundle: DatasetBundle,
    config: ExperimentConfig,
    engine_config: EngineConfig | None = None,
    solver: OnlineTriClustering | None = None,
) -> OnlineRunResult:
    """Stream the bundle's corpus through the incremental engine.

    The engine counterpart of :func:`run_online_stream`: identical
    snapshot boundaries and solver settings, but ingestion goes through
    :class:`~repro.engine.streaming.StreamingSentimentEngine` —
    vocabulary grown incrementally and per-snapshot matrices assembled
    from deltas instead of full rebuilds.  Per-snapshot runtimes here
    include graph construction (the rebuild path's construction happens
    outside its solver timing), so the engine's totals are end-to-end.

    ``engine_config`` overrides the default experiment-derived
    :class:`~repro.engine.EngineConfig`; ``solver`` supplies a
    pre-configured solver instance instead (mutually exclusive with a
    non-default solver section, as in the engine itself).
    """
    if engine_config is None and solver is None:
        engine_config = EngineConfig(
            seed=config.solver_seed,
            solver={"max_iterations": config.online_max_iterations},
        )
    engine = StreamingSentimentEngine(
        engine_config, lexicon=bundle.lexicon, solver=solver
    )
    try:
        return _run_engine_stream(engine, bundle, config)
    finally:
        engine.close()


def _run_engine_stream(
    engine: StreamingSentimentEngine,
    bundle: DatasetBundle,
    config: ExperimentConfig,
) -> OnlineRunResult:
    result = OnlineRunResult()
    tweet_preds: list[np.ndarray] = []
    tweet_truths: list[np.ndarray] = []
    watch = Stopwatch()
    for start_day, end_day, tweets in iter_tweet_batches(
        bundle.corpus, interval_days=config.online_interval_days
    ):
        profiles = bundle.corpus.profiles_for(tweets)
        with watch:
            engine.ingest(tweets, users=profiles)
            engine.advance_snapshot()
        step = engine.last_step
        assert step is not None and engine.last_graph is not None
        tweet_pred = step.tweet_sentiments()
        tweet_truth = engine.last_graph.corpus.tweet_labels()
        tweet_preds.append(tweet_pred)
        tweet_truths.append(tweet_truth)

        user_pred, user_truth = _user_arrays(
            engine.solver, bundle, day=end_day
        )
        result.snapshots.append(
            SnapshotOutcome(
                index=step.snapshot_index,
                start_day=start_day,
                end_day=end_day,
                num_tweets=len(tweets),
                num_users=engine.last_graph.num_users,
                runtime_seconds=watch.last,
                tweet_accuracy=clustering_accuracy(tweet_pred, tweet_truth),
                user_accuracy=clustering_accuracy(user_pred, user_truth),
            )
        )

    result.tweet_predictions = (
        np.concatenate(tweet_preds) if tweet_preds else np.empty(0, np.int64)
    )
    result.tweet_truth = (
        np.concatenate(tweet_truths) if tweet_truths else np.empty(0, np.int64)
    )
    final_day = bundle.corpus.day_range[1]
    result.user_predictions, result.user_truth = _user_arrays(
        engine.solver, bundle, day=final_day
    )
    result.total_runtime = watch.total
    return result


def _user_arrays(
    solver: OnlineTriClustering,
    bundle: DatasetBundle,
    day: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Predictions + ground truth for all users the solver has seen."""
    labels = solver.user_sentiment_labels()
    if not labels:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    uids = sorted(labels)
    predictions = np.array([labels[u] for u in uids], dtype=np.int64)
    truth = np.array(
        [
            int(label) if (label := bundle.corpus.users[u].label_at(day)) is not None else -1
            for u in uids
        ],
        dtype=np.int64,
    )
    return predictions, truth
