"""Table 5 — user-level sentiment analysis comparison.

Same method families as Table 4 but at the user level: SVM/NB on
user-feature rows, LP on the user-user retweeting graph, UserReg via
tweet aggregation, BACG, and the tri-clustering user factors.
"""

from __future__ import annotations

from repro.experiments import methods
from repro.experiments.configs import ExperimentConfig, bench_config
from repro.experiments.datasets import load_dataset
from repro.experiments.methods import MethodScore
from repro.experiments.reporting import format_table
from repro.experiments.table4 import DATASETS, ComparisonResult, run_table4


def run_table5(
    config: ExperimentConfig | None = None,
    table4_result: ComparisonResult | None = None,
) -> ComparisonResult:
    """Run every user-level method on both datasets.

    Passing the Table 4 result reuses its fitted UserReg models and
    tri-clustering factors (matching the paper: one fit serves both
    evaluation levels).
    """
    config = config or bench_config()
    if table4_result is None:
        table4_result = run_table4(config)
    result = ComparisonResult()
    for name in DATASETS:
        bundle = load_dataset(name, config)
        scores: list[MethodScore] = []
        scores.append(methods.user_svm(bundle, config))
        scores.append(methods.user_naive_bayes(bundle, config))
        scores.append(methods.user_label_propagation(bundle, config, 0.05))
        scores.append(methods.user_label_propagation(bundle, config, 0.10))
        scores.append(
            methods.user_userreg(
                bundle, config, table4_result.userreg_models[name]
            )
        )
        scores.append(methods.user_bacg(bundle, config))
        scores.append(
            methods.user_triclustering(
                bundle, config, table4_result.offline_results[name]
            )
        )
        scores.append(
            methods.user_online_triclustering(
                bundle, config, table4_result.online_runs[name]
            )
        )
        result.scores[name] = scores
    return result


def format_table5(result: ComparisonResult) -> str:
    """Render the Table 5 layout."""
    headers = ["Method", "Category", "Acc(30)", "Acc(37)", "NMI(30)", "NMI(37)"]
    rows = []
    method_names = [s.method for s in result.scores[DATASETS[0]]]
    for method in method_names:
        s30 = result.score_of("prop30", method)
        s37 = result.score_of("prop37", method)
        rows.append(
            [
                method,
                s30.category,
                s30.accuracy,
                s37.accuracy,
                s30.nmi if s30.nmi is not None else "-",
                s37.nmi if s37.nmi is not None else "-",
            ]
        )
    return format_table(
        headers, rows, title="Table 5: user-level sentiment comparison"
    )
