"""Experiment runners — one module per paper table/figure.

Every runner returns a plain dataclass of rows/series plus a
``format_*`` helper producing the text table the matching benchmark
writes to ``benchmarks/results/``.  See DESIGN.md §4 for the
per-experiment index.
"""

from repro.experiments.configs import ExperimentConfig, bench_config, smoke_config
from repro.experiments.datasets import DatasetBundle, load_dataset
from repro.experiments.reporting import format_table, write_result

__all__ = [
    "DatasetBundle",
    "ExperimentConfig",
    "bench_config",
    "format_table",
    "load_dataset",
    "smoke_config",
    "write_result",
]
