"""Figure 8 — convergence of the offline algorithm.

Records the Frobenius loss of Eq. (2) (tweet-feature approximation),
Eq. (3) (user-feature approximation) and the total objective of Eq. (1)
per iteration, on the Prop-30 analogue (the paper's setting).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.offline import OfflineTriClustering
from repro.experiments.configs import ExperimentConfig, bench_config
from repro.experiments.datasets import load_dataset
from repro.experiments.reporting import format_table


@dataclass
class ConvergenceTraces:
    """Per-iteration loss traces (Figures 8a-8c)."""

    tweet_losses: list[float]    # Eq. (2)
    user_losses: list[float]     # Eq. (3)
    totals: list[float]          # Eq. (1)
    iterations: int
    converged: bool

    @property
    def near_convergence_iteration(self) -> int:
        """First iteration within 1% of the final total (paper: ~10)."""
        final = self.totals[-1]
        for index, value in enumerate(self.totals):
            if abs(value - final) <= 0.01 * max(abs(final), 1e-30):
                return index
        return len(self.totals) - 1


def run_figure8(
    config: ExperimentConfig | None = None,
    dataset: str = "prop30",
    iterations: int = 100,
) -> ConvergenceTraces:
    """Run the offline solver with full history tracking."""
    config = config or bench_config()
    bundle = load_dataset(dataset, config)
    solver = OfflineTriClustering(
        alpha=0.05,
        beta=0.8,
        max_iterations=iterations,
        tolerance=0.0,  # run every iteration: the figure needs full traces
        seed=config.solver_seed,
        track_history=True,
    )
    result = solver.fit(bundle.graph)
    history = result.history
    return ConvergenceTraces(
        tweet_losses=history.tweet_losses,
        user_losses=history.user_losses,
        totals=history.totals,
        iterations=result.iterations,
        converged=result.converged,
    )


def format_figure8(traces: ConvergenceTraces, stride: int = 10) -> str:
    """Render sampled loss traces plus summary statistics."""
    rows = []
    count = len(traces.totals)
    for index in range(0, count, stride):
        rows.append(
            [
                index + 1,
                traces.tweet_losses[index],
                traces.user_losses[index],
                traces.totals[index],
            ]
        )
    if (count - 1) % stride != 0:
        rows.append(
            [
                count,
                traces.tweet_losses[-1],
                traces.user_losses[-1],
                traces.totals[-1],
            ]
        )
    table = format_table(
        ["Iter", "Eq2 loss", "Eq3 loss", "Total (Eq1)"],
        rows,
        title="Figure 8: convergence of the offline algorithm (prop30)",
    )
    drop = (
        (traces.totals[0] - traces.totals[-1])
        / max(abs(traces.totals[0]), 1e-30)
    )
    summary = (
        f"\nnear-convergence iteration (within 1% of final): "
        f"{traces.near_convergence_iteration + 1}"
        f"\ntotal-objective reduction: {100 * drop:.2f}%"
    )
    return table + summary


def monotonicity_violations(values: list[float], tolerance: float = 1e-9) -> int:
    """Count strict increases along a loss trace (diagnostic helper)."""
    array = np.asarray(values)
    if array.size < 2:
        return 0
    increases = array[1:] > array[:-1] * (1.0 + tolerance)
    return int(np.sum(increases))
