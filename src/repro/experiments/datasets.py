"""Shared dataset construction (with per-process caching).

Several benchmarks consume the same generated corpus; building it once
per (name, scale, seed) keeps the benchmark suite fast without hiding
the construction cost inside timed regions.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.data.corpus import TweetCorpus
from repro.data.synthetic import (
    BallotDatasetGenerator,
    prop30_config,
    prop37_config,
)
from repro.experiments.configs import ExperimentConfig
from repro.graph.tripartite import TripartiteGraph, build_tripartite_graph
from repro.text.lexicon import SentimentLexicon
from repro.text.vectorizer import TfidfVectorizer


@dataclass
class DatasetBundle:
    """Everything the runners need for one proposition dataset."""

    name: str
    generator: BallotDatasetGenerator
    corpus: TweetCorpus
    lexicon: SentimentLexicon
    vectorizer: TfidfVectorizer
    graph: TripartiteGraph


_FACTORIES = {
    "prop30": prop30_config,
    "prop37": prop37_config,
}


@lru_cache(maxsize=8)
def _load(name: str, scale: float, seed: int, lexicon_seed: int) -> DatasetBundle:
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown dataset {name!r}; expected one of {sorted(_FACTORIES)}"
        )
    generator = BallotDatasetGenerator(factory(scale=scale), seed=seed)
    corpus = generator.generate()
    lexicon = generator.lexicon(seed=lexicon_seed)
    vectorizer = TfidfVectorizer(min_document_frequency=2)
    vectorizer.fit(corpus.texts())
    graph = build_tripartite_graph(
        corpus, vectorizer=vectorizer, lexicon=lexicon
    )
    return DatasetBundle(
        name=name,
        generator=generator,
        corpus=corpus,
        lexicon=lexicon,
        vectorizer=vectorizer,
        graph=graph,
    )


def load_dataset(name: str, config: ExperimentConfig) -> DatasetBundle:
    """Build (or fetch the cached) dataset bundle for a config."""
    seed = config.seed if name == "prop30" else config.seed + 1
    return _load(name, config.scale, seed, config.lexicon_seed)
