"""Table 4 — tweet-level sentiment analysis comparison.

Reproduces the paper's comparison of supervised (SVM, NB),
semi-supervised (LP-5, LP-10, UserReg-10) and unsupervised (ESSA,
tri-clustering, online tri-clustering) methods on both proposition
datasets, reporting accuracy for all and NMI for the unsupervised ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments import methods
from repro.experiments.configs import ExperimentConfig, bench_config
from repro.experiments.datasets import load_dataset
from repro.experiments.methods import MethodScore
from repro.experiments.reporting import format_table

DATASETS = ("prop30", "prop37")


@dataclass
class ComparisonResult:
    """Scores per dataset, plus fitted artefacts reused by Table 5."""

    scores: dict[str, list[MethodScore]] = field(default_factory=dict)
    userreg_models: dict[str, object] = field(default_factory=dict)
    offline_results: dict[str, object] = field(default_factory=dict)
    online_runs: dict[str, object] = field(default_factory=dict)

    def score_of(self, dataset: str, method: str) -> MethodScore:
        for score in self.scores[dataset]:
            if score.method == method:
                return score
        raise KeyError(f"no score for {method!r} on {dataset!r}")


def run_table4(config: ExperimentConfig | None = None) -> ComparisonResult:
    """Run every tweet-level method on both datasets."""
    config = config or bench_config()
    result = ComparisonResult()
    for name in DATASETS:
        bundle = load_dataset(name, config)
        scores: list[MethodScore] = []
        scores.append(methods.tweet_svm(bundle, config))
        scores.append(methods.tweet_naive_bayes(bundle, config))
        scores.append(methods.tweet_label_propagation(bundle, config, 0.05))
        scores.append(methods.tweet_label_propagation(bundle, config, 0.10))
        userreg_score, userreg_model = methods.tweet_userreg(bundle, config)
        scores.append(userreg_score)
        scores.append(methods.tweet_essa(bundle, config))
        tri_score, offline_result = methods.tweet_triclustering(bundle, config)
        scores.append(tri_score)
        online_score, online_run = methods.tweet_online_triclustering(
            bundle, config
        )
        scores.append(online_score)

        result.scores[name] = scores
        result.userreg_models[name] = userreg_model
        result.offline_results[name] = offline_result
        result.online_runs[name] = online_run
    return result


def format_table4(result: ComparisonResult) -> str:
    """Render the Table 4 layout (accuracy and NMI per dataset)."""
    headers = ["Method", "Category", "Acc(30)", "Acc(37)", "NMI(30)", "NMI(37)"]
    rows = []
    method_names = [s.method for s in result.scores[DATASETS[0]]]
    for method in method_names:
        s30 = result.score_of("prop30", method)
        s37 = result.score_of("prop37", method)
        rows.append(
            [
                method,
                s30.category,
                s30.accuracy,
                s37.accuracy,
                s30.nmi if s30.nmi is not None else "-",
                s37.nmi if s37.nmi is not None else "-",
            ]
        )
    return format_table(
        headers, rows, title="Table 4: tweet-level sentiment comparison"
    )
