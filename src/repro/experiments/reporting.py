"""Plain-text table formatting and result persistence.

Benchmarks write their reproduced tables to ``benchmarks/results/`` (or
``$REPRO_RESULTS_DIR``) so EXPERIMENTS.md can point at concrete artefacts.
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from pathlib import Path


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned plain-text table.

    Floats are shown with 2 decimals (4 for values in [0, 1], which are
    metric scores); everything else via ``str``.
    """

    def render(value: object) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            if 0.0 <= value <= 1.0:
                return f"{value:.4f}"
            return f"{value:.2f}"
        return str(value)

    text_rows = [[render(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in text_rows)) if text_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def results_dir() -> Path:
    """Directory for benchmark result artefacts (created on demand)."""
    root = os.environ.get("REPRO_RESULTS_DIR")
    path = Path(root) if root else Path("benchmarks") / "results"
    path.mkdir(parents=True, exist_ok=True)
    return path


def write_result(name: str, text: str) -> Path:
    """Persist one experiment's text output; returns the file path."""
    path = results_dir() / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    return path


def describe_host(host: dict) -> str:
    """One-line host summary for benchmark table titles.

    ``host`` is a :func:`repro.utils.threads.host_info` dict; the BLAS
    clause reports the live OpenBLAS pool size (the thing that actually
    bounds GEMM parallelism) when it was detected.
    """
    physical = host.get("physical_cores")
    cores = (
        f"{physical} physical / {host['logical_cores']} logical cores"
        if physical
        else f"{host['logical_cores']} logical cores"
    )
    blas = host.get("blas_threads") or {}
    if blas:
        threads = sorted(set(blas.values()))
        cores += ", BLAS " + "/".join(str(t) for t in threads) + " thr"
    return cores
