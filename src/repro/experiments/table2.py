"""Table 2 — top-8 words with highest frequency per sentiment class.

Counts token frequencies over labeled tweets of the Prop-37 analogue,
split by class, reproducing the "head words stay popular and keep their
polarity" observation that motivates the temporal feature regularizer.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.data.tweet import Sentiment
from repro.experiments.configs import ExperimentConfig, bench_config
from repro.experiments.datasets import DatasetBundle, load_dataset
from repro.experiments.reporting import format_table
from repro.text.tokenizer import TweetTokenizer


@dataclass(frozen=True)
class TopWords:
    """Ranked (word, count) lists per class."""

    positive: list[tuple[str, int]]
    negative: list[tuple[str, int]]


def top_words_by_class(
    bundle: DatasetBundle,
    count: int = 8,
    day_range: tuple[int, int] | None = None,
) -> TopWords:
    """Most frequent tokens in labeled pos/neg tweets.

    ``day_range`` restricts the computation to a time window, which the
    stability check uses to verify head words persist across periods.
    """
    tokenizer = TweetTokenizer()
    counters = {
        Sentiment.POSITIVE: Counter(),
        Sentiment.NEGATIVE: Counter(),
    }
    for tweet in bundle.corpus.tweets:
        if tweet.sentiment not in counters:
            continue
        if day_range is not None and not (
            day_range[0] <= tweet.day <= day_range[1]
        ):
            continue
        counters[tweet.sentiment].update(tokenizer(tweet.text))
    return TopWords(
        positive=counters[Sentiment.POSITIVE].most_common(count),
        negative=counters[Sentiment.NEGATIVE].most_common(count),
    )


def run_table2(
    config: ExperimentConfig | None = None, count: int = 8
) -> TopWords:
    """Top words on the Prop-37 analogue (the paper's Table 2 dataset)."""
    config = config or bench_config()
    bundle = load_dataset("prop37", config)
    return top_words_by_class(bundle, count=count)


def format_table2(top: TopWords) -> str:
    """Render the Table 2 layout."""
    size = max(len(top.positive), len(top.negative))
    rows = []
    for i in range(size):
        pos = f"{top.positive[i][0]} ({top.positive[i][1]})" if i < len(top.positive) else ""
        neg = f"{top.negative[i][0]} ({top.negative[i][1]})" if i < len(top.negative) else ""
        rows.append([i + 1, pos, neg])
    return format_table(
        ["Rank", "Pos", "Neg"],
        rows,
        title="Table 2: top words with highest frequency (prop37 analogue)",
    )
