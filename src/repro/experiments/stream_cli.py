"""``python -m repro stream`` — run the serving engine over a JSONL file.

Feeds a JSON-lines tweet corpus (the :mod:`repro.data.io` schema)
through the :class:`~repro.engine.SentimentService` facade in
fixed-size snapshots and prints one sentiment summary per snapshot —
the smallest end-to-end path from "a file of tweets" to "a live sharded
model", and the operational face of the checkpoint format: pass
``--checkpoint`` to save after every snapshot and to warm-restart from
the same directory on the next invocation instead of replaying the
stream.  CLI flags assemble one :class:`~repro.engine.EngineConfig`,
validated before any data is read.

Usage::

    python -m repro stream tweets.jsonl --snapshot-size 500 \
        --n-shards 4 --backend process --checkpoint /var/lib/repro/engine
    python -m repro stream tweets.jsonl --n-shards 4 --backend socket \
        --workers 10.0.0.5:7500,10.0.0.6:7500
"""

from __future__ import annotations

import argparse
import json
import time
from collections.abc import Sequence
from pathlib import Path

import numpy as np

from repro.core.labeling import apply_alignment
from repro.data.io import load_corpus_jsonl
from repro.engine import EngineConfig, SentimentService
from repro.engine.persistence import STATE_FILE
from repro.text.lexicon import SentimentLexicon


def _shard_count(value: str) -> int | str:
    """``--n-shards`` values: a positive integer or the string 'auto'."""
    if value == "auto":
        return "auto"
    return int(value)


def build_stream_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro stream",
        description=(
            "Feed a JSONL tweet file through the streaming sentiment "
            "engine and print per-snapshot sentiment summaries."
        ),
    )
    parser.add_argument(
        "input", help="JSON-lines corpus file (schema of repro.data.io)"
    )
    parser.add_argument(
        "--snapshot-size",
        type=int,
        default=500,
        help="tweets folded into the model per snapshot (default 500)",
    )
    parser.add_argument(
        "--n-shards",
        type=_shard_count,
        default=1,
        help=(
            "user-partition shards for the solve: a count, or 'auto' to "
            "re-pick per snapshot from the user and worker counts "
            "(default 1 = unsharded)"
        ),
    )
    parser.add_argument(
        "--backend",
        choices=["serial", "thread", "process", "socket"],
        default="thread",
        help=(
            "execution backend for the sharded solve (default thread; "
            "'process' pins shard blocks in worker processes, 'socket' "
            "in remote `python -m repro worker` servers named by "
            "--workers — classify always stays on threads)"
        ),
    )
    parser.add_argument(
        "--workers",
        default=None,
        help=(
            "comma-separated host:port worker addresses for "
            "--backend socket (trusted networks only — the wire "
            "protocol is unauthenticated pickle)"
        ),
    )
    parser.add_argument(
        "--max-workers",
        type=int,
        default=None,
        help="workers for sharded solve/classify (default: auto)",
    )
    parser.add_argument(
        "--partitioner",
        choices=["hash", "greedy"],
        default="hash",
        help="shard routing strategy (default hash)",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        help=(
            "checkpoint directory: warm-restart from it when it exists, "
            "save after every snapshot"
        ),
    )
    parser.add_argument(
        "--max-profile-age",
        type=int,
        default=None,
        help=(
            "checkpoint compaction: age out authors neither posting nor "
            "retweeted within this many recent snapshots before each "
            "save (default: keep everything)"
        ),
    )
    parser.add_argument(
        "--lexicon",
        default=None,
        help=(
            "JSON file with 'positive'/'negative' word lists (or "
            "word->strength maps) enabling the Sf0 prior and pos/neg/neu "
            "column alignment"
        ),
    )
    parser.add_argument("--num-classes", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--max-iterations",
        type=int,
        default=30,
        help="solver sweeps per snapshot (default 30)",
    )
    return parser


def _load_lexicon(path: str | None) -> SentimentLexicon | None:
    if path is None:
        return None
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return SentimentLexicon(
        positive=payload.get("positive", ()),
        negative=payload.get("negative", ()),
    )


def config_from_args(args: argparse.Namespace) -> EngineConfig:
    """One validated EngineConfig from the CLI surface.

    Raises the config layer's eager errors (unknown backend or
    partitioner, bad counts) before any data is read.
    """
    workers = (
        tuple(
            address.strip()
            for address in args.workers.split(",")
            if address.strip()
        )
        if args.workers
        else None
    )
    return EngineConfig(
        num_classes=args.num_classes,
        seed=args.seed,
        max_profile_age=args.max_profile_age,
        solver={"max_iterations": args.max_iterations},
        sharding={
            "n_shards": args.n_shards,
            "partitioner": args.partitioner,
            "backend": args.backend,
            "max_workers": args.max_workers,
            "workers": workers,
        },
    )


def _snapshot_summary(service: SentimentService) -> np.ndarray:
    """Aligned per-class tweet counts for the latest snapshot."""
    step = service.engine.last_step
    alignment = service.engine.alignment
    assert step is not None and alignment is not None
    labels = apply_alignment(step.tweet_sentiments(), alignment)
    return np.bincount(labels, minlength=alignment.size)


def run_stream(args: argparse.Namespace) -> int:
    corpus = load_corpus_jsonl(args.input)
    checkpoint = Path(args.checkpoint) if args.checkpoint else None

    if checkpoint is not None and (checkpoint / STATE_FILE).exists():
        service = SentimentService.load(checkpoint)
        print(
            f"warm restart from {checkpoint} "
            f"({service.engine.snapshots_processed} snapshots already folded "
            "in; engine flags come from the checkpoint)"
        )
    else:
        service = SentimentService(
            config=config_from_args(args), lexicon=_load_lexicon(args.lexicon)
        )

    names = service.classes
    if args.snapshot_size < 1:
        raise SystemExit("--snapshot-size must be >= 1")
    tweets = corpus.tweets
    if not tweets:
        print("input contains no tweets")
        return 0

    # A warm-restarted engine has already folded part (or all) of this
    # file in; re-ingesting those tweets would double-count them in the
    # temporal state, so they are skipped by id.
    builder = service.engine.builder
    already = [t for t in tweets if builder.has_ingested(t.tweet_id)]
    if already:
        print(f"skipping {len(already)} already-ingested tweets")
        tweets = [t for t in tweets if not builder.has_ingested(t.tweet_id)]
    if not tweets:
        print("nothing new to fold in; model unchanged")

    try:
        for offset in range(0, len(tweets), args.snapshot_size):
            batch = tweets[offset : offset + args.snapshot_size]
            service.ingest(batch, users=corpus.profiles_for(batch))
            started = time.perf_counter()
            report = service.snapshot()
            elapsed = time.perf_counter() - started
            counts = _snapshot_summary(service)
            summary = " ".join(
                f"{name} {count}" for name, count in zip(names, counts)
            )
            print(
                f"snapshot {report.index}: {report.num_tweets} tweets, "
                f"{report.num_users} users, {report.num_features} features, "
                f"{report.iterations} iters, {elapsed:.2f}s | {summary}"
            )
            if checkpoint is not None:
                service.save(checkpoint)

        user_labels = service.user_sentiments()
        user_counts = np.bincount(
            np.array([entry.label for entry in user_labels], dtype=np.int64),
            minlength=len(names),
        )
        user_summary = " ".join(
            f"{name} {count}" for name, count in zip(names, user_counts)
        )
        print(
            f"done: {service.engine.snapshots_processed} snapshots, "
            f"{len(user_labels)} users tracked | users: {user_summary}"
        )
        if checkpoint is not None:
            print(f"checkpoint: {checkpoint}")
        return 0
    finally:
        service.close()


def stream_main(argv: Sequence[str] | None = None) -> int:
    return run_stream(build_stream_parser().parse_args(argv))
