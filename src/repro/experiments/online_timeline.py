"""Figures 11 and 12 — online vs mini-batch vs full-batch over time.

For each snapshot of the stream the three algorithms report wall-clock
runtime, tweet-level accuracy on the snapshot's new tweets, and
user-level accuracy over all users seen so far.  Expected shapes
(Section 5.2): the online algorithm's accuracy tracks full-batch while
its runtime tracks mini-batch; mini-batch accuracy is the lowest and the
most burst-sensitive; full-batch runtime grows with the stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.batch import FullBatchTriClustering, MiniBatchTriClustering
from repro.data.stream import SnapshotStream
from repro.eval.metrics import clustering_accuracy
from repro.eval.timing import Stopwatch
from repro.experiments.configs import ExperimentConfig, bench_config
from repro.experiments.datasets import DatasetBundle, load_dataset
from repro.experiments.online_runner import run_online_stream
from repro.experiments.reporting import format_table


@dataclass
class TimelinePoint:
    """One algorithm's measurements at one snapshot."""

    index: int
    end_day: int
    num_new_tweets: int
    runtime_seconds: float
    tweet_accuracy: float
    user_accuracy: float


@dataclass
class TimelineResult:
    """Per-snapshot series for the three algorithms."""

    dataset: str
    online: list[TimelinePoint] = field(default_factory=list)
    mini_batch: list[TimelinePoint] = field(default_factory=list)
    full_batch: list[TimelinePoint] = field(default_factory=list)

    def mean_accuracy(self, series: str, level: str = "tweet") -> float:
        points: list[TimelinePoint] = getattr(self, series)
        attr = f"{level}_accuracy"
        values = [getattr(p, attr) for p in points]
        return float(np.mean(values)) if values else 0.0

    def total_runtime(self, series: str) -> float:
        points: list[TimelinePoint] = getattr(self, series)
        return float(sum(p.runtime_seconds for p in points))


def _user_accuracy_from_labels(
    labels: dict[int, int], bundle: DatasetBundle, day: int
) -> float:
    if not labels:
        return 0.0
    uids = sorted(labels)
    predictions = np.array([labels[u] for u in uids], dtype=np.int64)
    truth = np.array(
        [
            int(lab) if (lab := bundle.corpus.users[u].label_at(day)) is not None else -1
            for u in uids
        ],
        dtype=np.int64,
    )
    return clustering_accuracy(predictions, truth)


def run_timeline(
    config: ExperimentConfig | None = None,
    dataset: str = "prop30",
) -> TimelineResult:
    """Run all three algorithms over the same snapshot stream."""
    config = config or bench_config()
    bundle = load_dataset(dataset, config)
    result = TimelineResult(dataset=dataset)

    # --- online (reuses the shared runner, which already times steps) ---
    online_run = run_online_stream(bundle, config)
    for outcome in online_run.snapshots:
        result.online.append(
            TimelinePoint(
                index=outcome.index,
                end_day=outcome.end_day,
                num_new_tweets=outcome.num_tweets,
                runtime_seconds=outcome.runtime_seconds,
                tweet_accuracy=outcome.tweet_accuracy,
                user_accuracy=outcome.user_accuracy,
            )
        )

    # --- batch baselines ---
    for series_name, algorithm in (
        (
            "mini_batch",
            MiniBatchTriClustering(
                vectorizer=bundle.vectorizer,
                lexicon=bundle.lexicon,
                max_iterations=config.online_max_iterations,
                seed=config.solver_seed,
            ),
        ),
        (
            "full_batch",
            FullBatchTriClustering(
                vectorizer=bundle.vectorizer,
                lexicon=bundle.lexicon,
                max_iterations=config.online_max_iterations,
                seed=config.solver_seed,
            ),
        ),
    ):
        series: list[TimelinePoint] = getattr(result, series_name)
        watch = Stopwatch()
        stream = SnapshotStream(
            bundle.corpus, interval_days=config.online_interval_days
        )
        for snapshot in stream:
            with watch:
                step = algorithm.partial_fit(snapshot.corpus)
            # Tweet accuracy on this snapshot's new tweets only (full-batch
            # results cover all tweets so far; slice out the new ones).
            snapshot_ids = {t.tweet_id for t in snapshot.corpus.tweets}
            positions = [
                i for i, tid in enumerate(step.tweet_ids) if tid in snapshot_ids
            ]
            tweet_pred = step.tweet_sentiments()[positions]
            tweet_truth = np.array(
                [
                    int(t.sentiment) if t.sentiment is not None else -1
                    for t in snapshot.corpus.tweets
                ],
                dtype=np.int64,
            )
            series.append(
                TimelinePoint(
                    index=snapshot.index,
                    end_day=snapshot.end_day,
                    num_new_tweets=snapshot.num_tweets,
                    runtime_seconds=watch.last,
                    tweet_accuracy=clustering_accuracy(tweet_pred, tweet_truth),
                    user_accuracy=_user_accuracy_from_labels(
                        algorithm.user_sentiment_labels(),
                        bundle,
                        snapshot.end_day,
                    ),
                )
            )
    return result


def format_timeline(result: TimelineResult) -> str:
    """Render per-snapshot series plus the aggregate comparison."""
    headers = [
        "Snap", "Day", "n(t)",
        "t_on", "t_mini", "t_full",
        "tweetA_on", "tweetA_mini", "tweetA_full",
        "userA_on", "userA_mini", "userA_full",
    ]
    rows = []
    for on, mini, full in zip(
        result.online, result.mini_batch, result.full_batch
    ):
        rows.append(
            [
                on.index,
                on.end_day,
                on.num_new_tweets,
                round(on.runtime_seconds, 3),
                round(mini.runtime_seconds, 3),
                round(full.runtime_seconds, 3),
                on.tweet_accuracy,
                mini.tweet_accuracy,
                full.tweet_accuracy,
                on.user_accuracy,
                mini.user_accuracy,
                full.user_accuracy,
            ]
        )
    table = format_table(
        headers,
        rows,
        title=(
            f"Figures 11/12: online vs mini-batch vs full-batch "
            f"({result.dataset})"
        ),
    )
    summary = (
        f"\nmean tweet accuracy: online={result.mean_accuracy('online'):.4f} "
        f"mini={result.mean_accuracy('mini_batch'):.4f} "
        f"full={result.mean_accuracy('full_batch'):.4f}"
        f"\nmean user accuracy:  online={result.mean_accuracy('online', 'user'):.4f} "
        f"mini={result.mean_accuracy('mini_batch', 'user'):.4f} "
        f"full={result.mean_accuracy('full_batch', 'user'):.4f}"
        f"\ntotal runtime (s):   online={result.total_runtime('online'):.2f} "
        f"mini={result.total_runtime('mini_batch'):.2f} "
        f"full={result.total_runtime('full_batch'):.2f}"
    )
    return table + summary
