"""Experiment scaling presets.

The paper's datasets are ~14k (Prop 30) and ~45k (Prop 37) tweets; the
generator reproduces them proportionally via ``scale``.  Three presets:

- ``smoke``  — tiny, for unit/integration tests (seconds),
- ``bench``  — the default for ``pytest benchmarks/`` (tens of seconds),
- ``full``   — the paper's full-scale counts (minutes; opt-in via the
  ``REPRO_SCALE=full`` environment variable).
"""

from __future__ import annotations

import os
from dataclasses import dataclass


@dataclass(frozen=True)
class ExperimentConfig:
    """Scaling and seeding shared by the experiment runners."""

    scale: float
    seed: int = 7
    lexicon_seed: int = 11
    solver_seed: int = 7
    max_iterations: int = 200
    online_interval_days: int = 7
    online_max_iterations: int = 60

    def __post_init__(self) -> None:
        if not (0.0 < self.scale <= 1.0):
            raise ValueError(f"scale must be in (0, 1], got {self.scale}")


def smoke_config(**overrides) -> ExperimentConfig:
    """Tiny preset for tests."""
    defaults = dict(scale=0.04, max_iterations=60, online_max_iterations=30)
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def bench_config(**overrides) -> ExperimentConfig:
    """Benchmark preset; ``REPRO_SCALE`` overrides the scale.

    ``REPRO_SCALE`` accepts a float (e.g. ``0.2``) or the literal
    ``full`` (= 1.0).
    """
    scale = 0.08
    raw = os.environ.get("REPRO_SCALE")
    if raw:
        scale = 1.0 if raw.strip().lower() == "full" else float(raw)
    defaults = dict(scale=scale)
    defaults.update(overrides)
    return ExperimentConfig(**defaults)
