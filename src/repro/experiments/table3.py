"""Table 3 — statistics of tweets and users.

Reports the labeled tweet counts (pos/neg) and user counts
(pos/neg/neu/unlabeled) of both generated datasets, next to the scaled
targets derived from the paper's Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.synthetic import expected_table3_counts
from repro.experiments.configs import ExperimentConfig, bench_config
from repro.experiments.datasets import load_dataset
from repro.experiments.reporting import format_table

DATASETS = ("prop30", "prop37")


@dataclass(frozen=True)
class Table3Row:
    """One dataset's statistics."""

    dataset: str
    tweet_pos: int
    tweet_neg: int
    user_pos: int
    user_neg: int
    user_neu: int
    user_unlabeled: int


def run_table3(config: ExperimentConfig | None = None) -> list[Table3Row]:
    """Measure label statistics of both generated corpora."""
    config = config or bench_config()
    rows = []
    for name in DATASETS:
        bundle = load_dataset(name, config)
        tweet_counts = bundle.corpus.tweet_label_counts(include_retweets=False)
        user_counts = bundle.corpus.user_label_counts(day=0)
        rows.append(
            Table3Row(
                dataset=name,
                tweet_pos=tweet_counts.get("pos", 0),
                tweet_neg=tweet_counts.get("neg", 0),
                user_pos=user_counts.get("pos", 0),
                user_neg=user_counts.get("neg", 0),
                user_neu=user_counts.get("neu", 0),
                user_unlabeled=user_counts.get("unlabeled", 0),
            )
        )
    return rows


def expected_rows(config: ExperimentConfig | None = None) -> list[Table3Row]:
    """Scaled Table-3 targets for comparison."""
    config = config or bench_config()
    rows = []
    for name in DATASETS:
        bundle = load_dataset(name, config)
        expected = expected_table3_counts(bundle.generator.config)
        rows.append(
            Table3Row(
                dataset=f"{name} (target)",
                tweet_pos=expected["tweet_pos"],
                tweet_neg=expected["tweet_neg"],
                user_pos=expected["user_pos"],
                user_neg=expected["user_neg"],
                user_neu=expected["user_neu"],
                user_unlabeled=expected["user_unlabeled"],
            )
        )
    return rows


def format_table3(
    measured: list[Table3Row], expected: list[Table3Row]
) -> str:
    """Render measured statistics next to the scaled paper targets."""
    headers = [
        "Dataset", "Tweet+", "Tweet-", "User+", "User-", "UserN", "UserU",
    ]
    rows = []
    for row in [*measured, *expected]:
        rows.append(
            [
                row.dataset,
                row.tweet_pos,
                row.tweet_neg,
                row.user_pos,
                row.user_neg,
                row.user_neu,
                row.user_unlabeled,
            ]
        )
    return format_table(
        headers,
        rows,
        title="Table 3: statistics of tweets and users (measured vs target)",
    )
