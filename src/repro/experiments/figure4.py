"""Figure 4 — the evolution of features.

The paper plots per-feature usage frequency in two different periods
(Aug 1-2 vs Sep 30-Oct 1) and observes that the *frequency distribution*
changes sharply while the *sentiment* of the head words stays put
(Table 2).  This runner measures exactly that on the generated data:

- frequency vectors of the same feature set in two windows,
- their rank correlation (low → distribution drifts),
- the overlap and polarity-stability of the top-k words per class
  across the windows (high → word sentiment is stable).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.experiments.configs import ExperimentConfig, bench_config
from repro.experiments.datasets import DatasetBundle, load_dataset
from repro.experiments.reporting import format_table
from repro.experiments.table2 import top_words_by_class
from repro.text.tokenizer import TweetTokenizer


@dataclass
class FeatureEvolution:
    """Frequency series for two windows plus summary statistics."""

    feature_names: list[str]
    early_counts: np.ndarray
    late_counts: np.ndarray
    spearman: float
    head_overlap: float          # fraction of early top words still top later
    head_polarity_stable: float  # fraction keeping their class


def _window_counts(
    bundle: DatasetBundle, start: int, end: int
) -> Counter[str]:
    tokenizer = TweetTokenizer()
    counts: Counter[str] = Counter()
    for tweet in bundle.corpus.tweets:
        if start <= tweet.day <= end:
            counts.update(tokenizer(tweet.text))
    return counts


def run_figure4(
    config: ExperimentConfig | None = None,
    dataset: str = "prop37",
    early_window: tuple[int, int] = (0, 14),
    late_window: tuple[int, int] = (60, 74),
    head_size: int = 8,
) -> FeatureEvolution:
    """Measure feature-frequency drift between two periods."""
    config = config or bench_config()
    bundle = load_dataset(dataset, config)
    early = _window_counts(bundle, *early_window)
    late = _window_counts(bundle, *late_window)

    names = sorted(set(early) | set(late))
    early_vector = np.array([early.get(w, 0) for w in names], dtype=float)
    late_vector = np.array([late.get(w, 0) for w in names], dtype=float)
    if names:
        rho = stats.spearmanr(early_vector, late_vector).statistic
        spearman = float(rho) if np.isfinite(rho) else 0.0
    else:
        spearman = 0.0

    early_top = top_words_by_class(bundle, count=head_size, day_range=early_window)
    late_top = top_words_by_class(bundle, count=head_size, day_range=late_window)

    early_head = {w for w, _ in early_top.positive} | {
        w for w, _ in early_top.negative
    }
    late_head = {w for w, _ in late_top.positive} | {
        w for w, _ in late_top.negative
    }
    overlap = (
        len(early_head & late_head) / len(early_head) if early_head else 0.0
    )
    # A head word "flips" when it sits in one class's top list early and
    # the opposite class's top list late; stability is 1 − flip rate over
    # the words present in both heads (Observation 1: sentiment of words
    # does not change even though their frequency does).
    early_pos = {w for w, _ in early_top.positive}
    early_neg = {w for w, _ in early_top.negative}
    late_pos = {w for w, _ in late_top.positive}
    late_neg = {w for w, _ in late_top.negative}
    shared = early_head & late_head
    flips = sum(
        1
        for w in shared
        if (w in early_pos and w not in early_neg and w in late_neg and w not in late_pos)
        or (w in early_neg and w not in early_pos and w in late_pos and w not in late_neg)
    )
    polarity_stable = 1.0 - flips / len(shared) if shared else 1.0
    return FeatureEvolution(
        feature_names=names,
        early_counts=early_vector,
        late_counts=late_vector,
        spearman=spearman,
        head_overlap=overlap,
        head_polarity_stable=polarity_stable,
    )


def format_figure4(evolution: FeatureEvolution) -> str:
    """Render the Figure 4 summary statistics."""
    rows = [
        ["features observed", len(evolution.feature_names)],
        ["spearman(early, late)", round(evolution.spearman, 4)],
        ["head-word overlap", evolution.head_overlap],
        ["head polarity stable", evolution.head_polarity_stable],
        ["early volume", int(evolution.early_counts.sum())],
        ["late volume", int(evolution.late_counts.sum())],
    ]
    return format_table(
        ["Statistic", "Value"],
        rows,
        title="Figure 4: feature-frequency evolution across periods",
    )
