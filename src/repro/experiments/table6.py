"""Table 6 — capability matrix of sentiment-analysis methods.

A static summary (the paper's related-work table): which levels each
method family covers (tweet/user), its supervision regime, and whether it
handles dynamics.  Generated from the same registry the comparison
tables use, so the matrix stays consistent with what this repository
actually implements.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.reporting import format_table


@dataclass(frozen=True)
class MethodCapability:
    """One method family's capability row."""

    method: str
    tweet_level: bool
    user_level: bool
    supervision: str       # "SL" | "SSL" | "USL"
    dynamic: bool
    implemented_as: str    # module in this repository


CAPABILITIES: tuple[MethodCapability, ...] = (
    MethodCapability("SVM [28]", True, True, "SL", False, "repro.baselines.svm"),
    MethodCapability("Naive Bayes [11]", True, True, "SL", False, "repro.baselines.naive_bayes"),
    MethodCapability("Label propagation [12,29,30]", True, True, "SSL", False, "repro.baselines.label_propagation"),
    MethodCapability("UserReg [7]", True, True, "SSL", False, "repro.baselines.userreg"),
    MethodCapability("Lexicon/MPQA [33]", True, False, "USL", False, "repro.baselines.lexicon_baseline"),
    MethodCapability("ONMTF [9]", True, False, "USL", False, "repro.baselines.onmtf"),
    MethodCapability("ESSA [15]", True, False, "USL", False, "repro.baselines.essa"),
    MethodCapability("BACG [34]", False, True, "USL", False, "repro.baselines.bacg"),
    MethodCapability("Volume dynamics [5,25]", True, False, "SL", True, "repro.experiments.online_timeline"),
    MethodCapability("Tri-clustering (this work)", True, True, "USL", True, "repro.core"),
)


def run_table6() -> list[MethodCapability]:
    """Return the capability matrix rows."""
    return list(CAPABILITIES)


def format_table6(rows: list[MethodCapability]) -> str:
    """Render the Table 6 layout."""
    headers = ["Method", "Tweet", "User", "Supervision", "Dynamic", "Module"]
    table_rows = [
        [
            row.method,
            row.tweet_level,
            row.user_level,
            row.supervision,
            row.dynamic,
            row.implemented_as,
        ]
        for row in rows
    ]
    return format_table(
        headers, table_rows, title="Table 6: methods for sentiment analysis"
    )
