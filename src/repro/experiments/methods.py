"""Method runners shared by the Table 4/5 comparisons.

Each runner takes a :class:`~repro.experiments.datasets.DatasetBundle`
and an :class:`~repro.experiments.configs.ExperimentConfig` and returns a
:class:`MethodScore`.  Supervised methods use a stratified 80/20 split;
semi-supervised methods use 5%/10% stratified seeds and are evaluated on
the remaining labeled entries; unsupervised methods are evaluated on all
labeled entries with majority-vote cluster alignment (the paper's
protocol, Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines import (
    BACG,
    ESSA,
    LabelPropagation,
    LinearSVM,
    MultinomialNaiveBayes,
    UserReg,
    knn_affinity,
)
from repro.core.offline import OfflineTriClustering
from repro.eval.metrics import clustering_accuracy, normalized_mutual_information
from repro.eval.protocol import sample_labeled_indices, train_test_split_indices
from repro.experiments.configs import ExperimentConfig
from repro.experiments.datasets import DatasetBundle
from repro.experiments.online_runner import run_online_stream


@dataclass(frozen=True)
class MethodScore:
    """One method's result on one dataset at one level."""

    method: str
    category: str          # "supervised" | "semi-supervised" | "unsupervised"
    accuracy: float
    nmi: float | None      # reported for unsupervised methods only (paper)


def _supervised_eval(
    predictions: np.ndarray, truth: np.ndarray, test: np.ndarray
) -> float:
    return float(np.mean(predictions == truth[test]))


# --------------------------------------------------------------------- #
# Tweet level (Table 4)
# --------------------------------------------------------------------- #


def tweet_svm(bundle: DatasetBundle, config: ExperimentConfig) -> MethodScore:
    truth = bundle.corpus.tweet_labels()
    train, test = train_test_split_indices(truth, 0.8, seed=config.seed)
    model = LinearSVM(seed=config.seed).fit(bundle.graph.xp[train], truth[train])
    accuracy = _supervised_eval(
        model.predict(bundle.graph.xp[test]), truth, test
    )
    return MethodScore("SVM", "supervised", accuracy, None)


def tweet_naive_bayes(
    bundle: DatasetBundle, config: ExperimentConfig
) -> MethodScore:
    truth = bundle.corpus.tweet_labels()
    train, test = train_test_split_indices(truth, 0.8, seed=config.seed)
    model = MultinomialNaiveBayes().fit(bundle.graph.xp[train], truth[train])
    accuracy = _supervised_eval(
        model.predict(bundle.graph.xp[test]), truth, test
    )
    return MethodScore("NB", "supervised", accuracy, None)


def tweet_label_propagation(
    bundle: DatasetBundle, config: ExperimentConfig, fraction: float
) -> MethodScore:
    truth = bundle.corpus.tweet_labels()
    seeds = sample_labeled_indices(truth, fraction, seed=config.seed)
    affinity = knn_affinity(bundle.graph.xp, num_neighbors=10)
    predictions = LabelPropagation().fit_predict(affinity, truth, seeds)
    mask = truth >= 0
    mask[seeds] = False
    accuracy = float(np.mean(predictions[mask] == truth[mask]))
    return MethodScore(
        f"LP-{int(fraction * 100)}", "semi-supervised", accuracy, None
    )


def tweet_userreg(
    bundle: DatasetBundle, config: ExperimentConfig, fraction: float = 0.10
) -> tuple[MethodScore, UserReg]:
    """UserReg tweet-level score plus the fitted model (for Table 5)."""
    truth = bundle.corpus.tweet_labels()
    seeds = sample_labeled_indices(truth, fraction, seed=config.seed)
    model = UserReg()
    predictions = model.fit_predict_tweets(
        bundle.graph.xp,
        bundle.graph.xr,
        bundle.graph.user_graph.adjacency,
        truth,
        seeds,
    )
    mask = truth >= 0
    mask[seeds] = False
    accuracy = float(np.mean(predictions[mask] == truth[mask]))
    score = MethodScore(
        f"UserReg-{int(fraction * 100)}", "semi-supervised", accuracy, None
    )
    return score, model


def tweet_essa(bundle: DatasetBundle, config: ExperimentConfig) -> MethodScore:
    truth = bundle.corpus.tweet_labels()
    result = ESSA(seed=config.solver_seed).fit(bundle.graph.xp, bundle.graph.sf0)
    predictions = result.tweet_sentiments()
    return MethodScore(
        "ESSA",
        "unsupervised",
        clustering_accuracy(predictions, truth),
        normalized_mutual_information(predictions, truth),
    )


def fit_offline(bundle: DatasetBundle, config: ExperimentConfig, **overrides):
    """Fit the offline tri-clustering solver with experiment defaults."""
    kwargs: dict[str, object] = dict(
        alpha=0.05,
        beta=0.8,
        max_iterations=config.max_iterations,
        seed=config.solver_seed,
    )
    kwargs.update(overrides)
    solver = OfflineTriClustering(**kwargs)
    return solver.fit(bundle.graph)


def tweet_triclustering(
    bundle: DatasetBundle, config: ExperimentConfig
) -> tuple[MethodScore, object]:
    """Offline tri-clustering tweet score plus the result (for Table 5)."""
    truth = bundle.corpus.tweet_labels()
    result = fit_offline(bundle, config)
    predictions = result.tweet_sentiments()
    score = MethodScore(
        "Tri-clustering",
        "unsupervised",
        clustering_accuracy(predictions, truth),
        normalized_mutual_information(predictions, truth),
    )
    return score, result


def tweet_online_triclustering(
    bundle: DatasetBundle, config: ExperimentConfig
) -> tuple[MethodScore, object]:
    """Online tri-clustering tweet score plus the run (for Table 5)."""
    run = run_online_stream(bundle, config)
    score = MethodScore(
        "Online tri-clustering",
        "unsupervised",
        run.tweet_accuracy,
        run.tweet_nmi,
    )
    return score, run


# --------------------------------------------------------------------- #
# User level (Table 5)
# --------------------------------------------------------------------- #


def user_svm(bundle: DatasetBundle, config: ExperimentConfig) -> MethodScore:
    truth = bundle.corpus.user_labels()
    train, test = train_test_split_indices(truth, 0.8, seed=config.seed)
    model = LinearSVM(seed=config.seed).fit(bundle.graph.xu[train], truth[train])
    accuracy = _supervised_eval(
        model.predict(bundle.graph.xu[test]), truth, test
    )
    return MethodScore("SVM", "supervised", accuracy, None)


def user_naive_bayes(
    bundle: DatasetBundle, config: ExperimentConfig
) -> MethodScore:
    truth = bundle.corpus.user_labels()
    train, test = train_test_split_indices(truth, 0.8, seed=config.seed)
    model = MultinomialNaiveBayes().fit(bundle.graph.xu[train], truth[train])
    accuracy = _supervised_eval(
        model.predict(bundle.graph.xu[test]), truth, test
    )
    return MethodScore("NB", "supervised", accuracy, None)


def user_label_propagation(
    bundle: DatasetBundle, config: ExperimentConfig, fraction: float
) -> MethodScore:
    truth = bundle.corpus.user_labels()
    seeds = sample_labeled_indices(truth, fraction, seed=config.seed)
    predictions = LabelPropagation().fit_predict(
        bundle.graph.user_graph.adjacency, truth, seeds
    )
    mask = truth >= 0
    mask[seeds] = False
    if not mask.any():  # degenerate tiny datasets: evaluate on seeds too
        mask = truth >= 0
    accuracy = float(np.mean(predictions[mask] == truth[mask]))
    return MethodScore(
        f"LP-{int(fraction * 100)}", "semi-supervised", accuracy, None
    )


def user_userreg(
    bundle: DatasetBundle, config: ExperimentConfig, model: UserReg
) -> MethodScore:
    """User-level UserReg readout (tweet aggregation, Deng's protocol)."""
    truth = bundle.corpus.user_labels()
    predictions = model.predict_users(bundle.graph.xr)
    return MethodScore(
        "UserReg-10",
        "semi-supervised",
        clustering_accuracy(predictions, truth),
        None,
    )


def user_bacg(bundle: DatasetBundle, config: ExperimentConfig) -> MethodScore:
    truth = bundle.corpus.user_labels()
    result = BACG(seed=config.solver_seed).fit(
        bundle.graph.xu, bundle.graph.user_graph
    )
    predictions = result.user_sentiments()
    return MethodScore(
        "BACG",
        "unsupervised",
        clustering_accuracy(predictions, truth),
        normalized_mutual_information(predictions, truth),
    )


def user_triclustering(
    bundle: DatasetBundle, config: ExperimentConfig, offline_result
) -> MethodScore:
    truth = bundle.corpus.user_labels()
    predictions = offline_result.user_sentiments()
    return MethodScore(
        "Tri-clustering",
        "unsupervised",
        clustering_accuracy(predictions, truth),
        normalized_mutual_information(predictions, truth),
    )


def user_online_triclustering(
    bundle: DatasetBundle, config: ExperimentConfig, online_run
) -> MethodScore:
    return MethodScore(
        "Online tri-clustering",
        "unsupervised",
        online_run.user_accuracy,
        online_run.user_nmi,
    )
