"""Parameter-sweep experiments — Figures 6, 7, 9 and 10.

- Figures 6/7: offline user-/tweet-level quality over an (α, β) grid.
- Figure 9: online user-/tweet-level accuracy over an (α, τ) grid.
- Figure 10: online accuracy as γ varies with everything else fixed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.eval.metrics import clustering_accuracy, normalized_mutual_information
from repro.experiments.configs import ExperimentConfig, bench_config
from repro.experiments.datasets import load_dataset
from repro.experiments.methods import fit_offline
from repro.experiments.online_runner import run_online_stream
from repro.experiments.reporting import format_table

DEFAULT_GRID = (0.0, 0.2, 0.5, 0.8, 1.0)


@dataclass(frozen=True)
class SweepPoint:
    """Quality at one parameter combination."""

    first: float    # α
    second: float   # β (offline) or τ (online)
    tweet_accuracy: float
    tweet_nmi: float
    user_accuracy: float
    user_nmi: float


@dataclass
class SweepResult:
    """All grid points of one sweep."""

    first_name: str
    second_name: str
    points: list[SweepPoint] = field(default_factory=list)

    def best_by(self, metric: str) -> SweepPoint:
        """Grid point maximizing ``metric`` (an attribute name)."""
        if not self.points:
            raise ValueError("sweep has no points")
        return max(self.points, key=lambda p: getattr(p, metric))


def run_alpha_beta_sweep(
    config: ExperimentConfig | None = None,
    dataset: str = "prop30",
    alphas: tuple[float, ...] = DEFAULT_GRID,
    betas: tuple[float, ...] = DEFAULT_GRID,
) -> SweepResult:
    """Figures 6 and 7: offline quality over the (α, β) grid."""
    config = config or bench_config()
    bundle = load_dataset(dataset, config)
    tweet_truth = bundle.corpus.tweet_labels()
    user_truth = bundle.corpus.user_labels()
    sweep = SweepResult(first_name="alpha", second_name="beta")
    for alpha in alphas:
        for beta in betas:
            result = fit_offline(bundle, config, alpha=alpha, beta=beta)
            tweet_pred = result.tweet_sentiments()
            user_pred = result.user_sentiments()
            sweep.points.append(
                SweepPoint(
                    first=alpha,
                    second=beta,
                    tweet_accuracy=clustering_accuracy(tweet_pred, tweet_truth),
                    tweet_nmi=normalized_mutual_information(
                        tweet_pred, tweet_truth
                    ),
                    user_accuracy=clustering_accuracy(user_pred, user_truth),
                    user_nmi=normalized_mutual_information(
                        user_pred, user_truth
                    ),
                )
            )
    return sweep


def run_alpha_tau_sweep(
    config: ExperimentConfig | None = None,
    dataset: str = "prop30",
    alphas: tuple[float, ...] = (0.0, 0.5, 0.9),
    taus: tuple[float, ...] = (0.1, 0.5, 0.9),
) -> SweepResult:
    """Figure 9: online accuracy over the (α, τ) grid."""
    config = config or bench_config()
    bundle = load_dataset(dataset, config)
    sweep = SweepResult(first_name="alpha", second_name="tau")
    for alpha in alphas:
        for tau in taus:
            run = run_online_stream(bundle, config, alpha=alpha, tau=tau)
            sweep.points.append(
                SweepPoint(
                    first=alpha,
                    second=tau,
                    tweet_accuracy=run.tweet_accuracy,
                    tweet_nmi=run.tweet_nmi,
                    user_accuracy=run.user_accuracy,
                    user_nmi=run.user_nmi,
                )
            )
    return sweep


def run_gamma_sweep(
    config: ExperimentConfig | None = None,
    dataset: str = "prop30",
    gammas: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
) -> SweepResult:
    """Figure 10: online accuracy as γ varies."""
    config = config or bench_config()
    bundle = load_dataset(dataset, config)
    sweep = SweepResult(first_name="gamma", second_name="gamma")
    for gamma in gammas:
        run = run_online_stream(bundle, config, gamma=gamma)
        sweep.points.append(
            SweepPoint(
                first=gamma,
                second=gamma,
                tweet_accuracy=run.tweet_accuracy,
                tweet_nmi=run.tweet_nmi,
                user_accuracy=run.user_accuracy,
                user_nmi=run.user_nmi,
            )
        )
    return sweep


def format_sweep(sweep: SweepResult, title: str) -> str:
    """Render a sweep as a flat table of grid points."""
    headers = [
        sweep.first_name,
        sweep.second_name,
        "tweet acc",
        "tweet NMI",
        "user acc",
        "user NMI",
    ]
    rows = [
        [
            point.first,
            point.second,
            point.tweet_accuracy,
            point.tweet_nmi,
            point.user_accuracy,
            point.user_nmi,
        ]
        for point in sweep.points
    ]
    best_user = sweep.best_by("user_accuracy")
    best_tweet = sweep.best_by("tweet_accuracy")
    summary = (
        f"\nbest user acc at {sweep.first_name}={best_user.first}, "
        f"{sweep.second_name}={best_user.second} ({best_user.user_accuracy:.4f})"
        f"\nbest tweet acc at {sweep.first_name}={best_tweet.first}, "
        f"{sweep.second_name}={best_tweet.second} ({best_tweet.tweet_accuracy:.4f})"
    )
    return format_table(headers, rows, title=title) + summary
