"""Command-line interface for the experiment runners.

Usage::

    python -m repro list
    python -m repro table4 --scale 0.05
    python -m repro figure8 --scale 0.08 --save
    python -m repro stream tweets.jsonl --n-shards 4 --checkpoint ckpt/
    python -m repro worker --listen 0.0.0.0:7500

Each experiment prints the same table its benchmark writes; ``--save``
additionally persists it under ``benchmarks/results/``.  The ``stream``
subcommand (see :mod:`repro.experiments.stream_cli`) has its own flags:
it feeds a JSONL tweet file through the serving engine instead of
regenerating a paper artifact.  The ``worker`` subcommand (see
:mod:`repro.utils.transport`) serves a socket-backend shard worker for
``WorkerPool(backend="socket")`` clients on other hosts.
"""

from __future__ import annotations

import argparse
from collections.abc import Callable, Sequence

from repro.experiments.configs import ExperimentConfig, bench_config
from repro.experiments.figure4 import format_figure4, run_figure4
from repro.experiments.figure8 import format_figure8, run_figure8
from repro.experiments.online_timeline import format_timeline, run_timeline
from repro.experiments.reporting import write_result
from repro.experiments.sweeps import (
    format_sweep,
    run_alpha_beta_sweep,
    run_alpha_tau_sweep,
    run_gamma_sweep,
)
from repro.experiments.table2 import format_table2, run_table2
from repro.experiments.table3 import expected_rows, format_table3, run_table3
from repro.experiments.table4 import format_table4, run_table4
from repro.experiments.table5 import format_table5, run_table5
from repro.experiments.table6 import format_table6, run_table6

Runner = Callable[[ExperimentConfig], str]


def _table2(config: ExperimentConfig) -> str:
    return format_table2(run_table2(config))


def _table3(config: ExperimentConfig) -> str:
    return format_table3(run_table3(config), expected_rows(config))


def _table4(config: ExperimentConfig) -> str:
    return format_table4(run_table4(config))


def _table5(config: ExperimentConfig) -> str:
    return format_table5(run_table5(config))


def _table6(config: ExperimentConfig) -> str:
    del config  # static matrix
    return format_table6(run_table6())


def _figure4(config: ExperimentConfig) -> str:
    return format_figure4(run_figure4(config))


def _figure6(config: ExperimentConfig) -> str:
    return format_sweep(
        run_alpha_beta_sweep(config),
        "Figures 6/7: offline quality vs (alpha, beta), prop30",
    )


def _figure8(config: ExperimentConfig) -> str:
    return format_figure8(run_figure8(config))


def _figure9(config: ExperimentConfig) -> str:
    return format_sweep(
        run_alpha_tau_sweep(config),
        "Figure 9: online accuracy vs (alpha, tau), prop30",
    )


def _figure10(config: ExperimentConfig) -> str:
    return format_sweep(
        run_gamma_sweep(config), "Figure 10: online accuracy vs gamma, prop30"
    )


def _figure11(config: ExperimentConfig) -> str:
    return format_timeline(run_timeline(config, "prop30"))


def _figure12(config: ExperimentConfig) -> str:
    return format_timeline(run_timeline(config, "prop37"))


EXPERIMENTS: dict[str, tuple[Runner, str]] = {
    "table2": (_table2, "top words per sentiment class"),
    "table3": (_table3, "dataset statistics vs scaled targets"),
    "table4": (_table4, "tweet-level method comparison"),
    "table5": (_table5, "user-level method comparison"),
    "table6": (_table6, "method capability matrix"),
    "figure4": (_figure4, "feature-frequency evolution"),
    "figure6": (_figure6, "offline (alpha, beta) sweep [also figure7]"),
    "figure8": (_figure8, "offline convergence traces"),
    "figure9": (_figure9, "online (alpha, tau) sweep"),
    "figure10": (_figure10, "online gamma sweep"),
    "figure11": (_figure11, "online vs batch timeline, prop30"),
    "figure12": (_figure12, "online vs batch timeline, prop37"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate tables/figures of 'Tripartite Graph Clustering for "
            "Dynamic Sentiment Analysis on Social Media' (SIGMOD 2014)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=["list", *EXPERIMENTS],
        help="experiment id, or 'list' to enumerate them",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="dataset scale in (0, 1]; default follows REPRO_SCALE / 0.08",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the experiment seed"
    )
    parser.add_argument(
        "--save",
        action="store_true",
        help="also write the output under benchmarks/results/",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    import sys

    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "stream":
        # The stream subcommand has its own flag set (input file,
        # sharding, checkpointing) and bypasses the experiment parser.
        from repro.experiments.stream_cli import stream_main

        return stream_main(argv[1:])
    if argv and argv[0] == "worker":
        # Shard worker server for WorkerPool(backend="socket") clients.
        from repro.utils.transport import worker_main

        return worker_main(argv[1:])

    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name, (_, description) in EXPERIMENTS.items():
            print(f"{name.ljust(width)}  {description}")
        print(
            f"{'stream'.ljust(width)}  "
            "feed a JSONL tweet file through the serving engine "
            "(python -m repro stream --help)"
        )
        print(
            f"{'worker'.ljust(width)}  "
            "serve a socket-backend shard worker "
            "(python -m repro worker --listen HOST:PORT)"
        )
        return 0

    overrides = {}
    if args.scale is not None:
        overrides["scale"] = args.scale
    if args.seed is not None:
        overrides["seed"] = args.seed
    config = bench_config(**overrides)

    runner, _ = EXPERIMENTS[args.experiment]
    text = runner(config)
    print(text)
    if args.save:
        path = write_result(args.experiment, text)
        print(f"\nwritten: {path}")
    return 0
