"""Orthogonal non-negative matrix tri-factorization (Ding et al. [9]).

Factorizes a document-term matrix ``X ≈ F·H·Gᵀ`` with non-negative,
(softly) orthogonal document factor ``F`` and term factor ``G``.  This is
the document-clustering baseline the ESSA paper compares against, and the
algorithmic core that :class:`~repro.baselines.essa.ESSA` and
:class:`~repro.baselines.bacg.BACG` extend.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.utils.matrices import hard_assignments, safe_sqrt_ratio
from repro.utils.rng import RandomState, spawn_rng

MatrixLike = np.ndarray | sp.spmatrix


@dataclass
class ONMTFResult:
    """Factors of one ONMTF run."""

    document_factor: np.ndarray   # F, n×k
    association: np.ndarray       # H, k×k
    term_factor: np.ndarray       # G, l×k
    losses: list[float]

    def document_clusters(self) -> np.ndarray:
        return hard_assignments(self.document_factor)

    def term_clusters(self) -> np.ndarray:
        return hard_assignments(self.term_factor)


class ONMTF:
    """Orthogonal NMTF document/term co-clustering.

    Updates (projector form, Ding et al. 2006):

    - ``F ← F ∘ sqrt((X·G·Hᵀ) / (F·Fᵀ·X·G·Hᵀ))``
    - ``G ← G ∘ sqrt((Xᵀ·F·H) / (G·Gᵀ·Xᵀ·F·H))``
    - ``H ← H ∘ sqrt((Fᵀ·X·G) / (Fᵀ·F·H·Gᵀ·G))``
    """

    def __init__(
        self,
        num_clusters: int = 3,
        max_iterations: int = 100,
        tolerance: float = 1e-5,
        seed: RandomState = None,
    ) -> None:
        if num_clusters < 2:
            raise ValueError(f"num_clusters must be >= 2, got {num_clusters}")
        self.num_clusters = num_clusters
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.seed = seed

    def fit(
        self,
        x: MatrixLike,
        term_prior: np.ndarray | None = None,
        prior_weight: float = 0.0,
    ) -> ONMTFResult:
        """Factorize ``x``; optionally regularize ``G`` toward a prior.

        ``term_prior``/``prior_weight`` implement the emotional-signal
        regularization ``prior_weight·||G − G0||²`` used by ESSA.
        """
        rng = spawn_rng(self.seed)
        n, l = x.shape
        k = self.num_clusters
        f = rng.uniform(0.01, 1.0, size=(n, k))
        if term_prior is not None:
            if term_prior.shape != (l, k):
                raise ValueError(
                    f"term_prior shape {term_prior.shape} != ({l}, {k})"
                )
            g = np.maximum(term_prior, 0.0) + 0.01 * rng.uniform(size=(l, k))
            # A near-identity association anchors the document-factor
            # columns to the prior's class semantics; a random H would
            # absorb an arbitrary permutation (same reasoning as
            # repro.core.initialization._near_identity).
            h = np.eye(k) + 0.05 * rng.uniform(size=(k, k))
        else:
            g = rng.uniform(0.01, 1.0, size=(l, k))
            h = rng.uniform(0.01, 1.0, size=(k, k))

        losses: list[float] = []
        for _ in range(self.max_iterations):
            xg = np.asarray(x @ g)                     # n×k
            f_num = xg @ h.T
            f = f * safe_sqrt_ratio(f_num, f @ (f.T @ f_num))

            xtf = np.asarray(x.T @ f)                  # l×k
            g_num = xtf @ h
            g_den = g @ (g.T @ g_num)
            if term_prior is not None and prior_weight > 0.0:
                g_num = g_num + prior_weight * term_prior
                g_den = g_den + prior_weight * g
            g = g * safe_sqrt_ratio(g_num, g_den)

            h_num = f.T @ np.asarray(x @ g)
            h_den = (f.T @ f) @ h @ (g.T @ g)
            h = h * safe_sqrt_ratio(h_num, h_den)

            losses.append(self._loss(x, f, h, g, term_prior, prior_weight))
            if (
                len(losses) >= 2
                and abs(losses[-2] - losses[-1])
                < self.tolerance * max(abs(losses[-2]), 1e-30)
            ):
                break
        return ONMTFResult(
            document_factor=f, association=h, term_factor=g, losses=losses
        )

    @staticmethod
    def _loss(
        x: MatrixLike,
        f: np.ndarray,
        h: np.ndarray,
        g: np.ndarray,
        term_prior: np.ndarray | None,
        prior_weight: float,
    ) -> float:
        fh = f @ h
        cross = float(np.sum(np.asarray(x.T @ fh) * g))
        x_sq = (
            float(x.multiply(x).sum()) if sp.issparse(x) else float(np.sum(x * x))
        )
        gram = float(np.trace((g.T @ g) @ (fh.T @ fh)))
        loss = max(x_sq - 2.0 * cross + gram, 0.0)
        if term_prior is not None and prior_weight > 0.0:
            diff = g - term_prior
            loss += prior_weight * float(np.sum(diff * diff))
        return loss
