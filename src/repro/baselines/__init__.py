"""Comparison methods of Section 5 (Tables 4 and 5).

Supervised:        :class:`MultinomialNaiveBayes`, :class:`LinearSVM`
Semi-supervised:   :class:`LabelPropagation` (LP-5 / LP-10),
                   :class:`UserReg` (UserReg-10)
Unsupervised:      :class:`ESSA`, :class:`BACG`, :class:`ONMTF`,
                   :class:`LexiconClassifier`
Online baselines:  :class:`MiniBatchTriClustering`,
                   :class:`FullBatchTriClustering`
User aggregation:  :func:`aggregate_user_sentiments` (the Smith/Deng
                   "user = average of their tweets" estimator)
"""

from repro.baselines.aggregation import aggregate_user_sentiments
from repro.baselines.bacg import BACG
from repro.baselines.batch import FullBatchTriClustering, MiniBatchTriClustering
from repro.baselines.essa import ESSA
from repro.baselines.label_propagation import LabelPropagation, knn_affinity
from repro.baselines.lexicon_baseline import LexiconClassifier
from repro.baselines.naive_bayes import MultinomialNaiveBayes
from repro.baselines.onmtf import ONMTF
from repro.baselines.svm import LinearSVM
from repro.baselines.userreg import UserReg

__all__ = [
    "BACG",
    "ESSA",
    "FullBatchTriClustering",
    "LabelPropagation",
    "LexiconClassifier",
    "LinearSVM",
    "MiniBatchTriClustering",
    "MultinomialNaiveBayes",
    "ONMTF",
    "UserReg",
    "aggregate_user_sentiments",
    "knn_affinity",
]
