"""Lexicon-matching classifier (MPQA-style baseline [33]).

Classifies a tweet by the signed sum of lexicon polarities of its tokens:
positive sum → positive, negative → negative, zero → neutral.  The
weakest baseline family in the paper's related work; useful as a sanity
floor for every other method.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.text.lexicon import SentimentLexicon
from repro.text.tokenizer import TweetTokenizer


class LexiconClassifier:
    """Rule-based polarity classifier over a sentiment lexicon."""

    def __init__(
        self,
        lexicon: SentimentLexicon,
        tokenizer: TweetTokenizer | None = None,
        neutral_band: float = 0.0,
    ) -> None:
        if neutral_band < 0:
            raise ValueError(f"neutral_band must be >= 0, got {neutral_band}")
        self.lexicon = lexicon
        self.tokenizer = tokenizer or TweetTokenizer()
        self.neutral_band = neutral_band

    def score(self, text: str) -> float:
        """Signed lexicon score of one tweet."""
        return self.lexicon.score_tokens(self.tokenizer(text))

    def predict_one(self, text: str) -> int:
        """Class id for one tweet (0 pos / 1 neg / 2 neu)."""
        value = self.score(text)
        if value > self.neutral_band:
            return 0
        if value < -self.neutral_band:
            return 1
        return 2

    def predict(self, texts: Sequence[str]) -> np.ndarray:
        """Class ids for a batch of tweets."""
        return np.array([self.predict_one(t) for t in texts], dtype=np.int64)
