"""User sentiment by aggregating tweet sentiments (Smith [28], Deng [7]).

The baseline assumption the reproduced paper argues *against*: a user's
sentiment is the aggregate of their tweets' sentiments.  Used both as a
standalone estimator and inside :class:`~repro.baselines.userreg.UserReg`.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def aggregate_user_sentiments(
    xr: sp.spmatrix,
    tweet_sentiments: np.ndarray,
    num_classes: int = 3,
    default_class: int = 2,
) -> np.ndarray:
    """Majority-vote a user's tweets into a user sentiment.

    Parameters
    ----------
    xr:
        User-tweet incidence matrix (``m×n``); any positive entry counts
        the tweet toward the user.
    tweet_sentiments:
        Class id per tweet; entries ``< 0`` (unknown) are skipped.
    default_class:
        Class assigned to users with no classified tweets (the paper's
        setting would leave them neutral).
    """
    tweet_sentiments = np.asarray(tweet_sentiments, dtype=np.int64)
    m, n = xr.shape
    if tweet_sentiments.shape[0] != n:
        raise ValueError(
            f"xr has {n} tweet columns but got {tweet_sentiments.shape[0]} labels"
        )
    if not (0 <= default_class < num_classes):
        raise ValueError(
            f"default_class must be in [0, {num_classes}), got {default_class}"
        )
    votes = np.zeros((m, num_classes), dtype=np.float64)
    incidence = sp.csr_matrix(xr)
    valid = tweet_sentiments >= 0
    for klass in range(num_classes):
        column_mask = valid & (tweet_sentiments == klass)
        votes[:, klass] = np.asarray(
            incidence[:, np.flatnonzero(column_mask)].sum(axis=1)
        ).ravel()
    predictions = np.argmax(votes, axis=1)
    predictions[votes.sum(axis=1) == 0.0] = default_class
    return predictions


def soft_aggregate_user_sentiments(
    xr: sp.spmatrix,
    tweet_memberships: np.ndarray,
) -> np.ndarray:
    """Average soft tweet memberships per user (rows normalized to sum 1)."""
    memberships = np.asarray(tweet_memberships, dtype=np.float64)
    if memberships.ndim != 2 or memberships.shape[0] != xr.shape[1]:
        raise ValueError(
            f"memberships shape {memberships.shape} inconsistent with xr {xr.shape}"
        )
    totals = np.asarray(sp.csr_matrix(xr).sum(axis=1)).ravel()
    totals[totals == 0.0] = 1.0
    summed = np.asarray(xr @ memberships)
    return summed / totals[:, None]
