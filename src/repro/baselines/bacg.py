"""BACG — attributed-graph clustering of users [34].

Xu et al. (SIGMOD 2012) cluster an attributed graph using both structure
(edges) and content (node attributes).  The reproduced paper applies BACG
to the user-user retweeting graph with tf-idf user features as attributes
and uses the resulting clusters as an unsupervised user-level baseline
(Table 5).

The original is a Bayesian model-based method; this reimplementation
keeps the identical problem shape — joint structure + content user
clustering — as a graph-regularized NMF:

    min ||Xu − Su·Hu·Vᵀ||² + β·tr(Suᵀ·Lu·Su),   Su, Hu, V ≥ 0

which is the standard matrix-factorization formulation of attributed
graph clustering and exercises the same comparison axis (DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.graph.usergraph import UserGraph
from repro.utils.matrices import hard_assignments, safe_sqrt_ratio
from repro.utils.rng import RandomState, spawn_rng

MatrixLike = np.ndarray | sp.spmatrix


@dataclass
class BACGResult:
    """User clusters from one BACG run."""

    user_factor: np.ndarray      # Su, m×k
    association: np.ndarray      # Hu, k×k
    attribute_factor: np.ndarray  # V, l×k
    losses: list[float]

    def user_sentiments(self) -> np.ndarray:
        return hard_assignments(self.user_factor)


class BACG:
    """Structure + content user clustering via graph-regularized NMF."""

    def __init__(
        self,
        num_classes: int = 3,
        structure_weight: float = 0.3,
        max_iterations: int = 100,
        tolerance: float = 1e-5,
        seed: RandomState = None,
        normalize_attributes: bool = True,
    ) -> None:
        if structure_weight < 0:
            raise ValueError(
                f"structure_weight must be >= 0, got {structure_weight}"
            )
        self.num_classes = num_classes
        self.structure_weight = structure_weight
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.seed = seed
        self.normalize_attributes = normalize_attributes

    def fit(self, xu: MatrixLike, user_graph: UserGraph) -> BACGResult:
        """Cluster users from attributes ``xu`` and the retweet graph."""
        rng = spawn_rng(self.seed)
        if self.normalize_attributes:
            # Unit-L2 attribute rows keep prolific users from dominating
            # the content term, mirroring the original model's per-node
            # attribute distributions.
            xu = sp.csr_matrix(xu, dtype=np.float64)
            norms = np.sqrt(np.asarray(xu.multiply(xu).sum(axis=1)).ravel())
            norms[norms == 0.0] = 1.0
            xu = sp.diags(1.0 / norms) @ xu
        m, l = xu.shape
        if user_graph.num_users != m:
            raise ValueError(
                f"user graph has {user_graph.num_users} nodes, xu has {m} rows"
            )
        k = self.num_classes
        beta = self.structure_weight
        gu = user_graph.adjacency
        du = user_graph.degree_matrix
        laplacian = user_graph.laplacian

        su = rng.uniform(0.01, 1.0, size=(m, k))
        hu = rng.uniform(0.01, 1.0, size=(k, k))
        v = rng.uniform(0.01, 1.0, size=(l, k))

        losses: list[float] = []
        for _ in range(self.max_iterations):
            xv = np.asarray(xu @ v)                    # m×k
            su_num = xv @ hu.T + beta * np.asarray(gu @ su)
            su_den = su @ (su.T @ (xv @ hu.T)) + beta * np.asarray(du @ su)
            su = su * safe_sqrt_ratio(su_num, su_den)

            xtsu = np.asarray(xu.T @ su)               # l×k
            v_num = xtsu @ hu
            v = v * safe_sqrt_ratio(v_num, v @ (v.T @ v_num))

            h_num = su.T @ np.asarray(xu @ v)
            h_den = (su.T @ su) @ hu @ (v.T @ v)
            hu = hu * safe_sqrt_ratio(h_num, h_den)

            losses.append(self._loss(xu, su, hu, v, laplacian, beta))
            if (
                len(losses) >= 2
                and abs(losses[-2] - losses[-1])
                < self.tolerance * max(abs(losses[-2]), 1e-30)
            ):
                break
        return BACGResult(
            user_factor=su, association=hu, attribute_factor=v, losses=losses
        )

    @staticmethod
    def _loss(
        xu: MatrixLike,
        su: np.ndarray,
        hu: np.ndarray,
        v: np.ndarray,
        laplacian: MatrixLike,
        beta: float,
    ) -> float:
        sh = su @ hu
        cross = float(np.sum(np.asarray(xu.T @ sh) * v))
        x_sq = (
            float(xu.multiply(xu).sum())
            if sp.issparse(xu)
            else float(np.sum(np.asarray(xu) ** 2))
        )
        gram = float(np.trace((v.T @ v) @ (sh.T @ sh)))
        smooth = float(np.sum(su * np.asarray(laplacian @ su)))
        return max(x_sq - 2.0 * cross + gram, 0.0) + beta * max(smooth, 0.0)
