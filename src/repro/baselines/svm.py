"""Linear one-vs-rest SVM trained with Pegasos-style SGD (Smith et al. [28]).

[28] classify ballot-initiative tweets with a linear SVM over tf-idf
features.  Offline environments have no sklearn, so the trainer here is
the standard Pegasos stochastic sub-gradient solver for the L2-regularized
hinge loss, run per class in one-vs-rest fashion with deterministic seeded
shuffling.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.utils.rng import RandomState, spawn_rng

MatrixLike = np.ndarray | sp.spmatrix


class LinearSVM:
    """One-vs-rest L2-regularized hinge-loss classifier.

    Parameters
    ----------
    regularization:
        Pegasos λ (weight of ``λ/2·||w||²``).
    epochs:
        Full passes over the training set.
    batch_size:
        Mini-batch size for the sub-gradient step.
    """

    def __init__(
        self,
        regularization: float = 1e-4,
        epochs: int = 30,
        batch_size: int = 64,
        seed: RandomState = None,
    ) -> None:
        if regularization <= 0:
            raise ValueError(
                f"regularization must be > 0, got {regularization}"
            )
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        self.regularization = regularization
        self.epochs = epochs
        self.batch_size = batch_size
        self.seed = seed
        self._weights: np.ndarray | None = None  # (k, l)
        self._bias: np.ndarray | None = None     # (k,)
        self._classes: np.ndarray | None = None

    def fit(self, x: MatrixLike, y: np.ndarray) -> "LinearSVM":
        """Train on labeled rows (label −1 rows are ignored)."""
        y = np.asarray(y, dtype=np.int64)
        if x.shape[0] != y.shape[0]:
            raise ValueError(
                f"x has {x.shape[0]} rows but y has {y.shape[0]} labels"
            )
        mask = y >= 0
        if not mask.any():
            raise ValueError("no labeled rows to fit on")
        x_fit = sp.csr_matrix(x)[np.flatnonzero(mask)]
        y_fit = y[mask]
        self._classes = np.unique(y_fit)
        num_features = x.shape[1]
        rng = spawn_rng(self.seed)

        weights = np.zeros((self._classes.size, num_features))
        biases = np.zeros(self._classes.size)
        for row, klass in enumerate(self._classes):
            binary = np.where(y_fit == klass, 1.0, -1.0)
            weights[row], biases[row] = self._pegasos(x_fit, binary, rng)
        self._weights = weights
        self._bias = biases
        return self

    def _pegasos(
        self, x: sp.csr_matrix, y: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, float]:
        """Mini-batch Pegasos for one binary problem."""
        n, l = x.shape
        w = np.zeros(l)
        b = 0.0
        step = 0
        lam = self.regularization
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                step += 1
                eta = 1.0 / (lam * step)
                batch = order[start : start + self.batch_size]
                xb = x[batch]
                yb = y[batch]
                margins = yb * (np.asarray(xb @ w) + b)
                violators = margins < 1.0
                w *= 1.0 - eta * lam
                if violators.any():
                    grad = np.asarray(
                        xb[violators].T @ yb[violators]
                    ).ravel()
                    scale = eta / batch.size
                    w += scale * grad
                    b += scale * float(yb[violators].sum())
                # Pegasos projection onto the ||w|| <= 1/sqrt(lam) ball.
                norm = np.linalg.norm(w)
                radius = 1.0 / np.sqrt(lam)
                if norm > radius:
                    w *= radius / norm
        return w, b

    def decision_function(self, x: MatrixLike) -> np.ndarray:
        """Per-class margins, shape ``(rows, num_classes)``."""
        if self._weights is None or self._bias is None:
            raise RuntimeError("classifier must be fitted before predicting")
        return np.asarray(x @ self._weights.T) + self._bias

    def predict(self, x: MatrixLike) -> np.ndarray:
        """Highest-margin class id per row."""
        margins = self.decision_function(x)  # raises RuntimeError unfitted
        assert self._classes is not None
        return self._classes[np.argmax(margins, axis=1)]
