"""Mini-batch and full-batch online baselines (Section 5.2).

The paper frames its online algorithm as the middle ground between two
extremes:

- **mini-batch** — run the *offline* tri-clustering solver independently
  on each snapshot's new data (fast, no history, poor quality);
- **full-batch** — rerun the offline solver on *all data so far* at every
  snapshot (best quality, cost grows with the stream).

Both wrappers expose the same per-snapshot interface as
:class:`~repro.core.online.OnlineTriClustering` so the timeline harness
(Figures 11/12) can drive the three interchangeably.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.offline import OfflineTriClustering, TriClusteringResult
from repro.data.corpus import TweetCorpus, concatenate_corpora
from repro.graph.tripartite import build_tripartite_graph
from repro.text.lexicon import SentimentLexicon
from repro.text.vectorizer import CountVectorizer
from repro.utils.matrices import hard_assignments
from repro.utils.rng import RandomState


@dataclass
class BatchStepResult:
    """Per-snapshot output of a batch baseline."""

    snapshot_index: int
    inner: TriClusteringResult
    tweet_ids: list[int]
    user_ids: list[int]

    def tweet_sentiments(self) -> np.ndarray:
        return self.inner.tweet_sentiments()

    def user_sentiments(self) -> np.ndarray:
        return self.inner.user_sentiments()


class _BatchBase:
    """Shared plumbing for the two batch baselines."""

    def __init__(
        self,
        vectorizer: CountVectorizer,
        lexicon: SentimentLexicon | None = None,
        num_classes: int = 3,
        alpha: float = 0.05,
        beta: float = 0.8,
        max_iterations: int = 100,
        seed: RandomState = None,
    ) -> None:
        self.vectorizer = vectorizer
        self.lexicon = lexicon
        self.num_classes = num_classes
        self.solver = OfflineTriClustering(
            num_classes=num_classes,
            alpha=alpha,
            beta=beta,
            max_iterations=max_iterations,
            seed=seed,
            track_history=False,
        )
        self._steps = 0
        self._user_state: dict[int, int] = {}

    def _run(self, corpus: TweetCorpus) -> TriClusteringResult:
        graph = build_tripartite_graph(
            corpus,
            vectorizer=self.vectorizer,
            lexicon=self.lexicon,
            num_classes=self.num_classes,
        )
        return self.solver.fit(graph)

    def _commit(
        self, corpus: TweetCorpus, result: TriClusteringResult
    ) -> BatchStepResult:
        step = BatchStepResult(
            snapshot_index=self._steps,
            inner=result,
            tweet_ids=[t.tweet_id for t in corpus.tweets],
            user_ids=corpus.user_ids,
        )
        labels = hard_assignments(result.factors.su)
        for row, uid in enumerate(corpus.user_ids):
            self._user_state[uid] = int(labels[row])
        self._steps += 1
        return step

    def user_sentiment_labels(self) -> dict[int, int]:
        """Latest hard sentiment per user seen so far."""
        return dict(self._user_state)


class MiniBatchTriClustering(_BatchBase):
    """Offline tri-clustering applied to each snapshot in isolation."""

    def partial_fit(self, snapshot_corpus: TweetCorpus) -> BatchStepResult:
        result = self._run(snapshot_corpus)
        return self._commit(snapshot_corpus, result)


class FullBatchTriClustering(_BatchBase):
    """Offline tri-clustering re-run on the accumulated stream.

    Note the per-snapshot result covers *all* tweets so far; the timeline
    harness slices out the current snapshot's tweets for like-for-like
    accuracy comparison.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._accumulated: TweetCorpus | None = None

    def partial_fit(self, snapshot_corpus: TweetCorpus) -> BatchStepResult:
        if self._accumulated is None:
            self._accumulated = snapshot_corpus
        else:
            self._accumulated = concatenate_corpora(
                [self._accumulated, snapshot_corpus],
                name=f"fullbatch[{self._steps}]",
            )
        result = self._run(self._accumulated)
        return self._commit(self._accumulated, result)

    @property
    def accumulated_corpus(self) -> TweetCorpus | None:
        return self._accumulated
