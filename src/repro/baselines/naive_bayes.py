"""Multinomial Naive Bayes with Laplace smoothing (Go et al. [11]).

The classic distant-supervision Twitter sentiment classifier: bag-of-words
multinomial NB.  Works directly on sparse count or tf-idf matrices
(tf-idf weights act as fractional counts, the standard relaxation).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

MatrixLike = np.ndarray | sp.spmatrix


class MultinomialNaiveBayes:
    """Multinomial NB over non-negative feature matrices.

    Parameters
    ----------
    smoothing:
        Additive (Laplace/Lidstone) smoothing pseudo-count per feature.
    """

    def __init__(self, smoothing: float = 1.0) -> None:
        if smoothing <= 0:
            raise ValueError(f"smoothing must be > 0, got {smoothing}")
        self.smoothing = smoothing
        self._log_prior: np.ndarray | None = None
        self._log_likelihood: np.ndarray | None = None
        self._classes: np.ndarray | None = None

    def fit(self, x: MatrixLike, y: np.ndarray) -> "MultinomialNaiveBayes":
        """Fit on rows of ``x`` with integer labels ``y`` (−1 rows ignored)."""
        y = np.asarray(y, dtype=np.int64)
        if x.shape[0] != y.shape[0]:
            raise ValueError(
                f"x has {x.shape[0]} rows but y has {y.shape[0]} labels"
            )
        mask = y >= 0
        if not mask.any():
            raise ValueError("no labeled rows to fit on")
        x_fit = x[np.flatnonzero(mask)]
        y_fit = y[mask]
        self._classes = np.unique(y_fit)
        num_classes = self._classes.size
        num_features = x.shape[1]

        counts = np.zeros((num_classes, num_features), dtype=np.float64)
        priors = np.zeros(num_classes, dtype=np.float64)
        for index, klass in enumerate(self._classes):
            rows = np.flatnonzero(y_fit == klass)
            block = x_fit[rows]
            summed = np.asarray(block.sum(axis=0)).ravel()
            counts[index] = summed
            priors[index] = rows.size
        smoothed = counts + self.smoothing
        self._log_likelihood = np.log(
            smoothed / smoothed.sum(axis=1, keepdims=True)
        )
        self._log_prior = np.log(priors / priors.sum())
        return self

    def predict_log_proba(self, x: MatrixLike) -> np.ndarray:
        """Unnormalized class log-scores for each row of ``x``."""
        if self._log_likelihood is None or self._log_prior is None:
            raise RuntimeError("classifier must be fitted before predicting")
        scores = np.asarray(x @ self._log_likelihood.T)
        return scores + self._log_prior

    def predict(self, x: MatrixLike) -> np.ndarray:
        """Most likely class id per row."""
        scores = self.predict_log_proba(x)  # raises RuntimeError unfitted
        assert self._classes is not None
        return self._classes[np.argmax(scores, axis=1)]
