"""UserReg — semi-supervised sentiment with user-consistency (Deng et al. [7]).

Deng et al. (SDM 2013) train a tweet classifier from partial labels while
regularizing predictions of tweets by the same user (and by pseudo-friend
users) to agree; user sentiment is then the aggregation of the user's
tweet sentiments.  The reproduced paper runs UserReg with 10% labels
(UserReg-10).

Reimplementation: clamped propagation over a composite tweet graph
blending (i) lexical kNN similarity, (ii) same-author co-membership and
(iii) retweet-neighbour co-membership — the three consistency terms of
the original objective — followed by majority aggregation for users.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.baselines.aggregation import aggregate_user_sentiments
from repro.baselines.label_propagation import LabelPropagation, knn_affinity

MatrixLike = np.ndarray | sp.spmatrix


class UserReg:
    """Semi-supervised tweet + user classification with user consistency.

    Parameters
    ----------
    lexical_weight / author_weight / social_weight:
        Blend weights of the three consistency graphs.
    num_neighbors:
        kNN size for the lexical graph.
    """

    def __init__(
        self,
        num_classes: int = 3,
        lexical_weight: float = 1.0,
        author_weight: float = 1.0,
        social_weight: float = 0.5,
        num_neighbors: int = 10,
        max_iterations: int = 200,
    ) -> None:
        self.num_classes = num_classes
        self.lexical_weight = lexical_weight
        self.author_weight = author_weight
        self.social_weight = social_weight
        self.num_neighbors = num_neighbors
        self.max_iterations = max_iterations
        self._tweet_predictions: np.ndarray | None = None

    def fit_predict_tweets(
        self,
        xp: sp.csr_matrix,
        xr: sp.spmatrix,
        user_adjacency: sp.spmatrix,
        labels: np.ndarray,
        seed_indices: np.ndarray,
    ) -> np.ndarray:
        """Predict a class for every tweet from the seeded labels."""
        graph = self._composite_graph(xp, xr, user_adjacency)
        propagator = LabelPropagation(
            num_classes=self.num_classes, max_iterations=self.max_iterations
        )
        predictions = propagator.fit_predict(graph, labels, seed_indices)
        self._tweet_predictions = predictions
        return predictions

    def predict_users(self, xr: sp.spmatrix) -> np.ndarray:
        """Aggregate the fitted tweet predictions per user (Deng's readout)."""
        if self._tweet_predictions is None:
            raise RuntimeError("call fit_predict_tweets before predict_users")
        return aggregate_user_sentiments(
            xr, self._tweet_predictions, num_classes=self.num_classes
        )

    # ------------------------------------------------------------------ #

    def _composite_graph(
        self,
        xp: sp.csr_matrix,
        xr: sp.spmatrix,
        user_adjacency: sp.spmatrix,
    ) -> sp.csr_matrix:
        """Blend lexical, same-author and social tweet-tweet affinities."""
        parts: list[sp.csr_matrix] = []
        if self.lexical_weight > 0:
            parts.append(
                self.lexical_weight
                * knn_affinity(xp, num_neighbors=self.num_neighbors)
            )
        incidence = sp.csr_matrix(xr, dtype=np.float64)
        if self.author_weight > 0:
            # Tweets sharing an author: XrᵀXr has a positive entry for each
            # co-authored pair.  Normalize by author volume so prolific
            # users do not produce cliques that swamp the lexical signal.
            user_volume = np.asarray(incidence.sum(axis=1)).ravel()
            user_volume[user_volume == 0.0] = 1.0
            scaled = sp.diags(1.0 / user_volume) @ incidence
            coauthor = (incidence.T @ scaled).tocsr()
            coauthor.setdiag(0.0)
            coauthor.eliminate_zeros()
            parts.append(self.author_weight * coauthor)
        if self.social_weight > 0:
            # Tweets of socially connected users.
            social = (incidence.T @ (user_adjacency @ incidence)).tocsr()
            social.setdiag(0.0)
            social.eliminate_zeros()
            volume = social.sum()
            if volume > 0:
                social = social * (incidence.shape[1] / volume)
            parts.append(self.social_weight * social)
        if not parts:
            raise ValueError("all graph weights are zero")
        graph = parts[0]
        for part in parts[1:]:
            graph = (graph + part).tocsr()
        return graph
