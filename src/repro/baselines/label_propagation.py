"""Graph-based label propagation (Goldberg & Zhu [12], Speriosu [29], Tan [30]).

The clamped iterative algorithm: seed nodes keep their labels; every other
node repeatedly absorbs the row-normalized average of its neighbours'
label distributions until convergence.

Two graphs are used in the paper's comparison:

- **tweet level** — a lexical-similarity kNN graph over tf-idf vectors
  (built here by :func:`knn_affinity`), with 5% / 10% labeled seeds;
- **user level** — the user-user retweeting graph.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

MatrixLike = np.ndarray | sp.spmatrix


def knn_affinity(
    features: sp.csr_matrix,
    num_neighbors: int = 10,
    chunk_size: int = 512,
) -> sp.csr_matrix:
    """Symmetric cosine kNN affinity graph over the rows of ``features``.

    Rows are L2-normalized, then each node keeps its ``num_neighbors``
    highest-cosine neighbours (self-loops removed); the result is
    symmetrized by maximum.  Similarity computation is chunked so memory
    stays ``O(chunk_size · n)``.
    """
    if num_neighbors < 1:
        raise ValueError(f"num_neighbors must be >= 1, got {num_neighbors}")
    x = sp.csr_matrix(features, dtype=np.float64)
    norms = np.sqrt(np.asarray(x.multiply(x).sum(axis=1)).ravel())
    norms[norms == 0.0] = 1.0
    x = sp.diags(1.0 / norms) @ x
    n = x.shape[0]

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    for start in range(0, n, chunk_size):
        stop = min(start + chunk_size, n)
        sims = np.asarray((x[start:stop] @ x.T).todense())
        for offset in range(stop - start):
            row = start + offset
            sims[offset, row] = 0.0  # no self-loop
            k = min(num_neighbors, n - 1)
            if k <= 0:
                continue
            top = np.argpartition(sims[offset], -k)[-k:]
            for col in top:
                weight = sims[offset, col]
                if weight > 0.0:
                    rows.append(row)
                    cols.append(int(col))
                    vals.append(float(weight))
    affinity = sp.csr_matrix((vals, (rows, cols)), shape=(n, n))
    return affinity.maximum(affinity.T).tocsr()


class LabelPropagation:
    """Clamped iterative label propagation over a weighted graph."""

    def __init__(
        self,
        num_classes: int = 3,
        max_iterations: int = 200,
        tolerance: float = 1e-6,
    ) -> None:
        if num_classes < 2:
            raise ValueError(f"num_classes must be >= 2, got {num_classes}")
        self.num_classes = num_classes
        self.max_iterations = max_iterations
        self.tolerance = tolerance

    def fit_predict(
        self,
        affinity: MatrixLike,
        labels: np.ndarray,
        seed_indices: np.ndarray,
    ) -> np.ndarray:
        """Propagate from ``seed_indices`` (positions with known labels).

        ``labels`` supplies the seed values; entries outside the seed set
        are ignored.  Returns predicted class ids for every node (seeds
        keep their given label; nodes in components without any seed
        fall back to the global majority seed label).
        """
        labels = np.asarray(labels, dtype=np.int64)
        n = affinity.shape[0]
        if labels.shape[0] != n:
            raise ValueError(
                f"labels length {labels.shape[0]} != graph size {n}"
            )
        seeds = np.asarray(seed_indices, dtype=np.int64)
        if seeds.size == 0:
            raise ValueError("at least one seed label is required")
        if np.any(labels[seeds] < 0):
            raise ValueError("seed positions must carry non-negative labels")

        adjacency = sp.csr_matrix(affinity, dtype=np.float64)
        degrees = np.asarray(adjacency.sum(axis=1)).ravel()
        degrees[degrees == 0.0] = 1.0
        transition = sp.diags(1.0 / degrees) @ adjacency

        distribution = np.full(
            (n, self.num_classes), 1.0 / self.num_classes, dtype=np.float64
        )
        seed_onehot = np.zeros((seeds.size, self.num_classes))
        seed_onehot[np.arange(seeds.size), labels[seeds]] = 1.0
        distribution[seeds] = seed_onehot

        for _ in range(self.max_iterations):
            updated = np.asarray(transition @ distribution)
            updated[seeds] = seed_onehot  # clamp
            change = float(np.abs(updated - distribution).max())
            distribution = updated
            if change < self.tolerance:
                break

        predictions = np.argmax(distribution, axis=1)
        # Nodes never reached by propagation have a flat distribution; give
        # them the majority seed label instead of an arbitrary argmax-0.
        reached = distribution.max(axis=1) > 1.0 / self.num_classes + 1e-12
        if not reached.all():
            majority = int(np.bincount(labels[seeds]).argmax())
            predictions[~reached] = majority
        predictions[seeds] = labels[seeds]
        return predictions
