"""ESSA — unsupervised sentiment analysis with emotional signals [15].

Hu et al. (WWW 2013) factorize the tweet-term matrix with orthogonal NMTF
while regularizing the term factor toward *emotional signals* (a sentiment
lexicon and emoticon indicators).  The paper under reproduction compares
against ESSA as the state-of-the-art unsupervised tweet-level method and
reports that tri-clustering consistently beats it on both accuracy and
NMI (Table 4).

This implementation captures the signal ESSA actually adds over plain
ONMTF — the emotion prior on the word factor — without the tweet-tweet /
word-word similarity graphs, which the reproduced paper explicitly calls
out as "very time consuming" and does not credit for the quality gap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.baselines.onmtf import ONMTF, ONMTFResult
from repro.utils.rng import RandomState

MatrixLike = np.ndarray | sp.spmatrix


@dataclass
class ESSAResult:
    """Tweet- and word-level sentiment clusters from one ESSA run."""

    inner: ONMTFResult

    def tweet_sentiments(self) -> np.ndarray:
        return self.inner.document_clusters()

    def word_sentiments(self) -> np.ndarray:
        return self.inner.term_clusters()


class ESSA:
    """Emotional-signal-regularized orthogonal NMTF.

    Parameters
    ----------
    num_classes:
        Number of sentiment classes.
    emotion_weight:
        Weight of the emotional-signal regularization ``||G − Sf0||²``
        (ESSA's λ; 0 reduces to plain ONMTF).
    """

    def __init__(
        self,
        num_classes: int = 3,
        emotion_weight: float = 0.5,
        max_iterations: int = 100,
        tolerance: float = 1e-5,
        seed: RandomState = None,
    ) -> None:
        if emotion_weight < 0:
            raise ValueError(
                f"emotion_weight must be >= 0, got {emotion_weight}"
            )
        self.emotion_weight = emotion_weight
        self._solver = ONMTF(
            num_clusters=num_classes,
            max_iterations=max_iterations,
            tolerance=tolerance,
            seed=seed,
        )

    def fit(self, xp: MatrixLike, sf0: np.ndarray | None) -> ESSAResult:
        """Cluster tweets from the tweet-feature matrix ``xp``.

        ``sf0`` is the emotional-signal prior over words (built from the
        sentiment lexicon via :func:`repro.text.lexicon.build_sf0`); when
        ``None``, ESSA degrades to plain ONMTF.
        """
        result = self._solver.fit(
            xp,
            term_prior=sf0,
            prior_weight=self.emotion_weight if sf0 is not None else 0.0,
        )
        return ESSAResult(inner=result)
