"""Clustering quality metrics (Section 5 definitions).

All metrics accept integer label arrays.  Entries with ground-truth label
``-1`` (unlabeled) are excluded from every computation, matching the
paper's evaluation over labeled tweets/users only.
"""

from __future__ import annotations

import numpy as np


def _validated(
    predicted: np.ndarray, truth: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Drop unlabeled entries and check shapes."""
    predicted = np.asarray(predicted, dtype=np.int64)
    truth = np.asarray(truth, dtype=np.int64)
    if predicted.shape != truth.shape:
        raise ValueError(
            f"shape mismatch: predicted {predicted.shape} vs truth {truth.shape}"
        )
    mask = truth >= 0
    return predicted[mask], truth[mask]


def clustering_accuracy(predicted_clusters: np.ndarray, truth: np.ndarray) -> float:
    """The paper's ``A(C,G)``: majority-vote cluster accuracy.

    Each output cluster is assigned the ground-truth class it overlaps
    most; accuracy is the fraction of samples whose cluster's majority
    class matches their own.  Equivalent to ``(1/n)·Σ_o max_g |o ∩ g|``.
    """
    predicted, actual = _validated(predicted_clusters, truth)
    if predicted.size == 0:
        return 0.0
    correct = 0
    for cluster in np.unique(predicted):
        members = actual[predicted == cluster]
        if members.size:
            counts = np.bincount(members)
            correct += int(counts.max())
    return correct / predicted.size


def confusion_matrix(
    predicted: np.ndarray, truth: np.ndarray, num_classes: int | None = None
) -> np.ndarray:
    """Confusion counts ``M[i, j] = |{predicted == i and truth == j}|``."""
    pred, actual = _validated(predicted, truth)
    if num_classes is None:
        num_classes = int(max(pred.max(initial=-1), actual.max(initial=-1))) + 1
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    for p, a in zip(pred, actual):
        matrix[p, a] += 1
    return matrix


def entropy(labels: np.ndarray) -> float:
    """Shannon entropy (nats) of a label distribution."""
    labels = np.asarray(labels, dtype=np.int64)
    labels = labels[labels >= 0]
    if labels.size == 0:
        return 0.0
    counts = np.bincount(labels).astype(np.float64)
    probabilities = counts[counts > 0] / labels.size
    return float(-np.sum(probabilities * np.log(probabilities)))


def mutual_information(predicted: np.ndarray, truth: np.ndarray) -> float:
    """Mutual information ``I(C;G)`` between two labelings (nats)."""
    pred, actual = _validated(predicted, truth)
    n = pred.size
    if n == 0:
        return 0.0
    info = 0.0
    for cluster in np.unique(pred):
        cluster_mask = pred == cluster
        p_cluster = cluster_mask.sum() / n
        for klass in np.unique(actual):
            joint = np.sum(cluster_mask & (actual == klass)) / n
            if joint > 0:
                p_class = np.sum(actual == klass) / n
                info += joint * np.log(joint / (p_cluster * p_class))
    return float(max(info, 0.0))


def normalized_mutual_information(predicted: np.ndarray, truth: np.ndarray) -> float:
    """``NMI(C,G) = 2·I(C;G) / (H(C) + H(G))`` in ``[0, 1]``.

    Defined as 0 when both labelings are single-cluster (zero entropy),
    the conventional degenerate-case value.
    """
    pred, actual = _validated(predicted, truth)
    h_pred = entropy(pred)
    h_true = entropy(actual)
    if h_pred + h_true == 0.0:
        return 0.0
    return 2.0 * mutual_information(pred, actual) / (h_pred + h_true)


def purity(predicted: np.ndarray, truth: np.ndarray) -> float:
    """Cluster purity — identical formula to majority-vote accuracy.

    Kept as a named alias because the clustering literature reports it
    separately; see :func:`clustering_accuracy`.
    """
    return clustering_accuracy(predicted, truth)
