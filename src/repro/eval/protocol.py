"""Label-sampling protocols for supervised / semi-supervised baselines.

The paper compares against LP with 5% / 10% seed labels and UserReg with
10% labels; supervised baselines use train/test splits.  These helpers
sample the index sets reproducibly and class-stratified (so that tiny
classes — e.g. Prop 37's 8 neutral users — are represented whenever
possible).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RandomState, spawn_rng


def sample_labeled_indices(
    labels: np.ndarray,
    fraction: float,
    seed: RandomState = None,
    stratified: bool = True,
    minimum_per_class: int = 1,
) -> np.ndarray:
    """Sample a fraction of the *labeled* entries as seeds.

    Returns positions into ``labels``; entries with label ``-1`` are never
    sampled.  With ``stratified=True`` each class contributes
    proportionally, with at least ``minimum_per_class`` seeds when the
    class has that many members.
    """
    if not (0.0 < fraction <= 1.0):
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    labels = np.asarray(labels, dtype=np.int64)
    rng = spawn_rng(seed)
    labeled = np.flatnonzero(labels >= 0)
    if labeled.size == 0:
        return labeled
    if not stratified:
        count = max(1, int(round(labeled.size * fraction)))
        return np.sort(rng.choice(labeled, size=count, replace=False))
    chosen: list[np.ndarray] = []
    for klass in np.unique(labels[labeled]):
        members = labeled[labels[labeled] == klass]
        count = int(round(members.size * fraction))
        count = max(min(minimum_per_class, members.size), count)
        count = min(count, members.size)
        chosen.append(rng.choice(members, size=count, replace=False))
    return np.sort(np.concatenate(chosen))


def train_test_split_indices(
    labels: np.ndarray,
    train_fraction: float = 0.8,
    seed: RandomState = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Stratified train/test split over labeled entries.

    Returns ``(train_positions, test_positions)``.  Unlabeled entries
    appear in neither set.
    """
    if not (0.0 < train_fraction < 1.0):
        raise ValueError(
            f"train_fraction must be in (0, 1), got {train_fraction}"
        )
    labels = np.asarray(labels, dtype=np.int64)
    rng = spawn_rng(seed)
    train_parts: list[np.ndarray] = []
    test_parts: list[np.ndarray] = []
    labeled = np.flatnonzero(labels >= 0)
    for klass in np.unique(labels[labeled]):
        members = labeled[labels[labeled] == klass]
        permuted = rng.permutation(members)
        cut = int(round(members.size * train_fraction))
        cut = min(max(cut, 1), members.size - 1) if members.size > 1 else 1
        train_parts.append(permuted[:cut])
        test_parts.append(permuted[cut:])
    train = np.sort(np.concatenate(train_parts)) if train_parts else labeled
    test = np.sort(np.concatenate(test_parts)) if test_parts else labeled[:0]
    return train, test


def cross_validation_folds(
    labels: np.ndarray,
    num_folds: int = 5,
    seed: RandomState = None,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Stratified k-fold splits over labeled entries.

    Returns a list of ``(train_positions, test_positions)`` pairs.
    """
    if num_folds < 2:
        raise ValueError(f"num_folds must be >= 2, got {num_folds}")
    labels = np.asarray(labels, dtype=np.int64)
    rng = spawn_rng(seed)
    labeled = np.flatnonzero(labels >= 0)
    fold_of = np.full(labels.shape, -1, dtype=np.int64)
    for klass in np.unique(labels[labeled]):
        members = rng.permutation(labeled[labels[labeled] == klass])
        for position, index in enumerate(members):
            fold_of[index] = position % num_folds
    folds = []
    for fold in range(num_folds):
        test = np.flatnonzero(fold_of == fold)
        train = np.flatnonzero((fold_of >= 0) & (fold_of != fold))
        folds.append((train, test))
    return folds
