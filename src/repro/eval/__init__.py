"""Evaluation substrate: clustering metrics and experiment protocols.

Implements the paper's two quality measures (Section 5) —

- **Clustering accuracy** ``A(C,G)``: majority-vote assignment of output
  clusters to ground-truth classes, then fraction correct.
- **NMI**: ``2·I(C;G) / (H(C) + H(G))``.

— plus Hungarian-aligned accuracy, purity, confusion matrices, and the
label-sampling protocols used by the semi-supervised baselines (LP-5,
LP-10, UserReg-10).
"""

from repro.eval.alignment import align_clusters, hungarian_accuracy, majority_vote_map
from repro.eval.metrics import (
    clustering_accuracy,
    confusion_matrix,
    entropy,
    mutual_information,
    normalized_mutual_information,
    purity,
)
from repro.eval.protocol import sample_labeled_indices, train_test_split_indices
from repro.eval.timing import Stopwatch

__all__ = [
    "Stopwatch",
    "align_clusters",
    "clustering_accuracy",
    "confusion_matrix",
    "entropy",
    "hungarian_accuracy",
    "majority_vote_map",
    "mutual_information",
    "normalized_mutual_information",
    "purity",
    "sample_labeled_indices",
    "train_test_split_indices",
]
