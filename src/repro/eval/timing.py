"""Wall-clock measurement for the runtime comparisons (Figures 11a/12a)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Stopwatch:
    """Accumulating stopwatch usable as a context manager.

    ``with watch: ...`` adds the elapsed time of the block to ``total``;
    ``laps`` records each block separately, which the online-timeline
    experiment uses to report per-snapshot runtimes.
    """

    total: float = 0.0
    laps: list[float] = field(default_factory=list)
    _started: float | None = None

    def __enter__(self) -> "Stopwatch":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._started is None:
            raise RuntimeError("Stopwatch exited without entering")
        elapsed = time.perf_counter() - self._started
        self._started = None
        self.laps.append(elapsed)
        self.total += elapsed

    @property
    def last(self) -> float:
        """Duration of the most recent lap (0.0 before any lap)."""
        return self.laps[-1] if self.laps else 0.0

    def reset(self) -> None:
        self.total = 0.0
        self.laps.clear()
        self._started = None
