"""Cluster-to-class alignment utilities.

Unsupervised methods emit arbitrary cluster ids; evaluation needs a map to
sentiment classes.  Two standard strategies are provided:

- **Majority vote** (the paper's choice for ``A(C,G)``): each cluster maps
  to its most frequent ground-truth class.  Several clusters may map to
  the same class.
- **Hungarian**: optimal one-to-one assignment maximizing total overlap
  (``scipy.optimize.linear_sum_assignment``), the stricter convention.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment


def majority_vote_map(
    predicted_clusters: np.ndarray, truth: np.ndarray
) -> dict[int, int]:
    """Map each output cluster id to its majority ground-truth class.

    Unlabeled entries (truth ``-1``) are ignored; clusters containing only
    unlabeled samples map to class 0.
    """
    predicted = np.asarray(predicted_clusters, dtype=np.int64)
    actual = np.asarray(truth, dtype=np.int64)
    mapping: dict[int, int] = {}
    for cluster in np.unique(predicted):
        members = actual[(predicted == cluster) & (actual >= 0)]
        if members.size == 0:
            mapping[int(cluster)] = 0
        else:
            mapping[int(cluster)] = int(np.bincount(members).argmax())
    return mapping


def align_clusters(
    predicted_clusters: np.ndarray,
    truth: np.ndarray,
    strategy: str = "majority",
) -> np.ndarray:
    """Relabel ``predicted_clusters`` into ground-truth class ids.

    ``strategy`` is ``"majority"`` (paper convention) or ``"hungarian"``.
    """
    predicted = np.asarray(predicted_clusters, dtype=np.int64)
    if strategy == "majority":
        mapping = majority_vote_map(predicted, truth)
    elif strategy == "hungarian":
        mapping = _hungarian_map(predicted, truth)
    else:
        raise ValueError(f"unknown alignment strategy: {strategy!r}")
    return np.array([mapping.get(int(c), 0) for c in predicted], dtype=np.int64)


def _hungarian_map(predicted: np.ndarray, truth: np.ndarray) -> dict[int, int]:
    """One-to-one cluster->class map maximizing total overlap."""
    actual = np.asarray(truth, dtype=np.int64)
    mask = actual >= 0
    pred = predicted[mask]
    act = actual[mask]
    clusters = np.unique(pred)
    classes = np.unique(act)
    if clusters.size == 0 or classes.size == 0:
        return {}
    overlap = np.zeros((clusters.size, classes.size), dtype=np.int64)
    for i, cluster in enumerate(clusters):
        cluster_mask = pred == cluster
        for j, klass in enumerate(classes):
            overlap[i, j] = np.sum(cluster_mask & (act == klass))
    row, col = linear_sum_assignment(-overlap)
    mapping = {int(clusters[i]): int(classes[j]) for i, j in zip(row, col)}
    # Clusters left unmatched (more clusters than classes) fall back to
    # their majority class.
    fallback = majority_vote_map(predicted, truth)
    for cluster in clusters:
        mapping.setdefault(int(cluster), fallback[int(cluster)])
    return mapping


def hungarian_accuracy(predicted_clusters: np.ndarray, truth: np.ndarray) -> float:
    """Accuracy under the optimal one-to-one cluster->class assignment."""
    aligned = align_clusters(predicted_clusters, truth, strategy="hungarian")
    actual = np.asarray(truth, dtype=np.int64)
    mask = actual >= 0
    if not mask.any():
        return 0.0
    return float(np.mean(aligned[mask] == actual[mask]))
