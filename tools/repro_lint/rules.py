"""The six REPnnn rules: this repo's invariants as AST checks.

Each rule documents the invariant it encodes, why the invariant exists
(which PR paid for it), and the heuristics it uses.  The heuristics are
deliberately conservative — a static checker that cries wolf gets
deleted; one that catches the honest mistake ("I just wrote ``X @ Sf``
in a sweep") earns its CI minutes.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from tools.repro_lint.core import Finding, ModuleContext, Rule, dotted_name

# --------------------------------------------------------------------- #
# Shared: scipy-sparse type inference
# --------------------------------------------------------------------- #

#: Annotation substrings that mark a parameter/variable as possibly
#: sparse.  ``MatrixLike`` is the repo-wide ``np.ndarray | sp.spmatrix``
#: alias, so it counts.
SPARSE_ANNOTATION_HINTS = (
    "spmatrix",
    "sparse",
    "csr_matrix",
    "csc_matrix",
    "coo_matrix",
    "csr_array",
    "csc_array",
    "MatrixLike",
)

#: ``scipy.sparse`` callables whose result is a sparse matrix.
SPARSE_CONSTRUCTORS = frozenset(
    {
        "csr_matrix",
        "csc_matrix",
        "coo_matrix",
        "lil_matrix",
        "dok_matrix",
        "dia_matrix",
        "bsr_matrix",
        "csr_array",
        "csc_array",
        "coo_array",
        "diags",
        "spdiags",
        "eye",
        "identity",
        "random",
        "rand",
        "random_array",
        "vstack",
        "hstack",
        "block_diag",
        "kron",
    }
)

#: Methods that return a sparse matrix when called on one.
SPARSE_PRESERVING_METHODS = frozenset(
    {"tocsr", "tocsc", "tocoo", "tolil", "todok", "todia", "tobsr",
     "transpose", "astype", "copy", "multiply", "maximum", "minimum"}
)

#: Repo helpers whose *return value* is a scipy CSR matrix.  These are
#: plain-name calls (no ``sp.`` owner), so alias tracking can't see
#: them; naming them keeps halo/shard payload rehydration inside the
#: spmm discipline — ``_csr_from_payload(payload["gu_halo"]) @ su``
#: is exactly the product REP001 exists to catch.
SPARSE_RETURNING_HELPERS = frozenset({"_csr_payload_matrix", "_csr_from_payload"})

#: Attribute names that always hold a scipy CSR matrix (or ``None``)
#: wherever they appear — the halo payload fields of
#: ``repro.graph.partition.ShardBlock``.  ``block.gu_halo`` reads in
#: the sweep hot path must route through ``SweepCache.dot`` / the spmm
#: engines like every other sparse operand (``su_halo`` is dense and
#: deliberately absent).
SPARSE_ATTRIBUTE_HINTS = frozenset({"gu_halo"})


def _scipy_sparse_aliases(tree: ast.Module) -> set[str]:
    """Local names bound to the ``scipy.sparse`` module."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name == "scipy.sparse":
                    aliases.add(item.asname or "scipy")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "scipy":
                for item in node.names:
                    if item.name == "sparse":
                        aliases.add(item.asname or "sparse")
    return aliases


def _annotation_is_sparse(annotation: ast.AST | None) -> bool:
    if annotation is None:
        return False
    try:
        text = ast.unparse(annotation)
    except Exception:  # pragma: no cover - unparse of odd nodes
        return False
    return any(hint in text for hint in SPARSE_ANNOTATION_HINTS)


class _SparseEnv:
    """Names known (heuristically) to hold scipy sparse matrices."""

    def __init__(self, aliases: set[str]) -> None:
        self.aliases = aliases
        self.names: set[str] = set()

    def is_sparse(self, node: ast.AST) -> bool:
        """Whether ``node`` evaluates to a sparse matrix, best effort."""
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Attribute):
            # ``x.T`` of a sparse name stays sparse.
            if node.attr == "T":
                return self.is_sparse(node.value)
            # block.gu_halo and friends: CSR payload fields by contract.
            return node.attr in SPARSE_ATTRIBUTE_HINTS
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                # sp.csr_matrix(...), sparse.vstack(...)
                owner = dotted_name(func.value)
                if owner in self.aliases and func.attr in SPARSE_CONSTRUCTORS:
                    return True
                # x.tocsr(), x.transpose(), ... of a sparse expression
                if func.attr in SPARSE_PRESERVING_METHODS:
                    return self.is_sparse(func.value)
            elif isinstance(func, ast.Name):
                # _csr_from_payload(...): repo helpers returning CSR.
                return func.id in SPARSE_RETURNING_HELPERS
            return False
        return False

    def learn(self, body: list[ast.stmt]) -> None:
        """Collect sparse-valued simple assignments from ``body``."""
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(target, ast.Name) and self.is_sparse(node.value):
                        self.names.add(target.id)
                elif isinstance(node, ast.AnnAssign):
                    if isinstance(node.target, ast.Name) and (
                        _annotation_is_sparse(node.annotation)
                        or (node.value is not None and self.is_sparse(node.value))
                    ):
                        self.names.add(node.target.id)


def _function_sparse_env(
    func: ast.FunctionDef | ast.AsyncFunctionDef, aliases: set[str]
) -> _SparseEnv:
    env = _SparseEnv(aliases)
    args = func.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if _annotation_is_sparse(arg.annotation):
            env.names.add(arg.arg)
    env.learn(func.body)
    return env


# --------------------------------------------------------------------- #
# REP001 — raw sparse·dense products bypassing the spmm layer
# --------------------------------------------------------------------- #


class RawSparseProductRule(Rule):
    """Hot-path sparse·dense products must go through the spmm layer.

    PR 7 made every sweep product pluggable (``spmm="auto"|"scipy"|
    "threads"|"numba"``) by routing all call sites through
    ``SweepCache.dot`` / ``repro.core.spmm`` engines, with float64
    bit-identity across engines guaranteed by per-row IEEE accumulation
    order.  A raw ``X @ dense`` (or ``X.dot(dense)``) on a scipy operand
    in the hot path silently escapes the ``spmm=``/``spmm_threads=``
    knobs *and* the float32 mode — it still computes the right numbers
    today, which is exactly why nobody notices until a benchmark shows
    the parallel engine not engaging.

    Sparse operands are inferred from scipy aliases, ``MatrixLike``
    annotations, the CSR-returning payload helpers
    (:data:`SPARSE_RETURNING_HELPERS`) and the halo payload attributes
    (:data:`SPARSE_ATTRIBUTE_HINTS`), so cut-edge halo blocks obey the
    same discipline as the primary matrices.

    Scope: ``repro.core``, ``repro.engine.streaming``,
    ``repro.engine.persistence`` (the hot path), plus
    ``repro.baselines`` (deliberately scipy-reference — kept visible via
    the baseline file rather than exempted, so new baseline modules make
    a conscious choice).  The sanctioned implementations
    (``core/spmm.py``, ``core/sweepcache.py``) are exempt: they *are*
    the layer.
    """

    code = "REP001"
    name = "raw-sparse-product"
    summary = "hot-path sparse·dense product bypasses the spmm engine layer"

    SCOPES = (
        "src/repro/core/",
        "src/repro/engine/streaming.py",
        "src/repro/engine/persistence.py",
        "src/repro/baselines/",
    )
    EXEMPT = (
        "src/repro/core/spmm.py",
        "src/repro/core/sweepcache.py",
    )

    def applies(self, path: str) -> bool:
        if path in self.EXEMPT:
            return False
        return any(
            path == scope or (scope.endswith("/") and path.startswith(scope))
            for scope in self.SCOPES
        )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        aliases = _scipy_sparse_aliases(ctx.tree)
        module_env = _SparseEnv(aliases)
        module_env.learn(ctx.tree.body)

        funcs = [
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        scopes: list[tuple[_SparseEnv, ast.AST]] = [(module_env, ctx.tree)]
        for func in funcs:
            env = _function_sparse_env(func, aliases)
            env.names |= module_env.names
            scopes.append((env, func))

        seen: set[tuple[int, int]] = set()
        for env, scope in scopes:
            for node in ast.walk(scope):
                if (
                    isinstance(node, ast.BinOp)
                    and isinstance(node.op, ast.MatMult)
                    and (env.is_sparse(node.left) or env.is_sparse(node.right))
                ):
                    key = (node.lineno, node.col_offset)
                    if key not in seen:
                        seen.add(key)
                        yield ctx.finding(
                            self.code,
                            node,
                            "raw sparse·dense product bypasses the spmm "
                            "engine layer; route it through SweepCache.dot "
                            "or a repro.core.spmm engine so the "
                            "spmm=/spmm_threads= knobs (and float32 mode) "
                            "apply",
                        )
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "dot"
                    and env.is_sparse(node.func.value)
                ):
                    key = (node.lineno, node.col_offset)
                    if key not in seen:
                        seen.add(key)
                        yield ctx.finding(
                            self.code,
                            node,
                            "raw .dot() on a scipy sparse operand bypasses "
                            "the spmm engine layer; route it through "
                            "SweepCache.dot or a repro.core.spmm engine",
                        )


# --------------------------------------------------------------------- #
# REP002 — RNG construction outside utils/rng.py
# --------------------------------------------------------------------- #


class StrayRngRule(Rule):
    """Seeds must flow through ``repro.utils.rng``.

    The whole reproduction stands on "one top-level seed determines
    everything": ``spawn_rng``/``child_seeds`` derive independent child
    generators per subsystem via ``SeedSequence`` spawning.  A direct
    ``np.random.default_rng()`` (or legacy ``np.random.seed`` global
    state, or the stdlib ``random`` module) creates a stream CI cannot
    replay — factors stop being bit-identical across runs and the whole
    determinism test pyramid silently tests nothing.

    ``np.random.Generator``/``SeedSequence``/``BitGenerator`` *type*
    references are fine — the rule targets construction and global
    state, not annotations.
    """

    code = "REP002"
    name = "stray-rng"
    summary = "RNG constructed outside repro.utils.rng"

    EXEMPT = ("src/repro/utils/rng.py",)
    TYPE_ONLY = frozenset({"Generator", "BitGenerator", "SeedSequence", "RandomState"})

    def applies(self, path: str) -> bool:
        return path not in self.EXEMPT

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        numpy_aliases: set[str] = set()
        numpy_random_aliases: set[str] = set()
        stdlib_random_aliases: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    if item.name == "numpy":
                        numpy_aliases.add(item.asname or "numpy")
                    elif item.name == "numpy.random":
                        numpy_random_aliases.add(item.asname or "numpy")
                    elif item.name == "random":
                        stdlib_random_aliases.add(item.asname or "random")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "numpy":
                    for item in node.names:
                        if item.name == "random":
                            numpy_random_aliases.add(item.asname or "random")
                elif node.module == "numpy.random":
                    for item in node.names:
                        if item.name not in self.TYPE_ONLY:
                            yield ctx.finding(
                                self.code,
                                node,
                                f"importing numpy.random.{item.name} here "
                                "creates an RNG stream outside "
                                "repro.utils.rng; use spawn_rng/child_seeds",
                            )
                elif node.module == "random":
                    yield ctx.finding(
                        self.code,
                        node,
                        "the stdlib random module is unseeded global state; "
                        "use repro.utils.rng.spawn_rng",
                    )

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            # np.random.<attr> / numpy.random.<attr>
            value = node.value
            if (
                isinstance(value, ast.Attribute)
                and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in numpy_aliases
            ):
                if node.attr not in self.TYPE_ONLY:
                    yield ctx.finding(
                        self.code,
                        node,
                        f"np.random.{node.attr} constructs an RNG outside "
                        "repro.utils.rng; thread a seed through "
                        "spawn_rng/child_seeds instead",
                    )
            # rnd.<attr> where rnd is the stdlib random module
            elif (
                isinstance(value, ast.Name)
                and value.id in stdlib_random_aliases
            ):
                yield ctx.finding(
                    self.code,
                    node,
                    f"random.{node.attr} uses unseeded global state; use "
                    "repro.utils.rng.spawn_rng",
                )
            # npr.<attr> where npr is numpy.random itself
            elif (
                isinstance(value, ast.Name)
                and value.id in numpy_random_aliases
                and node.attr not in self.TYPE_ONLY
            ):
                yield ctx.finding(
                    self.code,
                    node,
                    f"numpy.random.{node.attr} constructs an RNG outside "
                    "repro.utils.rng; use spawn_rng/child_seeds",
                )


# --------------------------------------------------------------------- #
# REP003 — wall-clock reads inside core/ numerics
# --------------------------------------------------------------------- #


class WallClockInCoreRule(Rule):
    """``repro.core`` never reads the wall clock.

    Bit-identical replay across hosts, backends, and shard counts (the
    regression harness PRs 3–8 built) only holds if nothing in the
    numerics branches on time.  Timing belongs to the engine/eval
    layers (``engine/streaming.py`` stamps ``perf_counter`` around the
    solve; ``eval/timing.py`` owns measurement).  A ``time.time()``
    inside ``core/`` is either dead telemetry or — worse — a
    time-dependent heuristic that breaks replay.
    """

    code = "REP003"
    name = "wall-clock-in-core"
    summary = "wall-clock read inside repro.core numerics"

    SCOPE = "src/repro/core/"
    CLOCK_ATTRS = frozenset(
        {
            "time",
            "time_ns",
            "perf_counter",
            "perf_counter_ns",
            "monotonic",
            "monotonic_ns",
            "process_time",
            "process_time_ns",
            "now",
            "utcnow",
            "today",
        }
    )

    def applies(self, path: str) -> bool:
        return path.startswith(self.SCOPE)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        time_aliases: set[str] = set()
        datetime_aliases: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    if item.name == "time":
                        time_aliases.add(item.asname or "time")
                    elif item.name == "datetime":
                        datetime_aliases.add(item.asname or "datetime")
            elif isinstance(node, ast.ImportFrom):
                if node.module in ("time", "datetime"):
                    yield ctx.finding(
                        self.code,
                        node,
                        f"importing from {node.module} inside repro.core: "
                        "core numerics must be wall-clock free (timing "
                        "lives in the engine/eval layers)",
                    )

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            root = parts[0]
            if (
                root in time_aliases or root in datetime_aliases
            ) and parts[-1] in self.CLOCK_ATTRS:
                yield ctx.finding(
                    self.code,
                    node,
                    f"{name}() reads the wall clock inside repro.core; "
                    "deterministic replay forbids time-dependent numerics "
                    "— move timing to the engine/eval layers",
                )


# --------------------------------------------------------------------- #
# REP004 — unpickling outside the framed transport
# --------------------------------------------------------------------- #


class UnframedPickleRule(Rule):
    """Unpickling happens only inside ``repro.utils.transport``.

    Unpickling executes code.  The socket backend's security posture
    (README "trusted networks only") is auditable precisely because
    every ``pickle.loads`` in the tree sits behind the framed transport
    — MAGIC + length-prefix framing, ``FrameError`` on garbage,
    protocol-version handshake.  A stray ``pickle.load`` elsewhere (a
    checkpoint loader, a cache file) silently widens the attack surface
    and dodges the framing discipline.  ``np.load(...,
    allow_pickle=True)`` is the same hole wearing a numpy hat.
    """

    code = "REP004"
    name = "unframed-pickle"
    summary = "unpickling outside repro.utils.transport"

    EXEMPT = ("src/repro/utils/transport.py",)
    LOAD_ATTRS = frozenset({"load", "loads", "Unpickler"})

    def applies(self, path: str) -> bool:
        return path not in self.EXEMPT

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        pickle_aliases: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    if item.name in ("pickle", "cPickle", "dill"):
                        pickle_aliases.add(item.asname or item.name)
            elif isinstance(node, ast.ImportFrom):
                if node.module in ("pickle", "cPickle", "dill"):
                    for item in node.names:
                        if item.name in self.LOAD_ATTRS:
                            yield ctx.finding(
                                self.code,
                                node,
                                f"importing {node.module}.{item.name}: "
                                "unpickling executes code and is allowed "
                                "only behind the framed protocol in "
                                "repro.utils.transport",
                            )

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                if (
                    isinstance(node.value, ast.Name)
                    and node.value.id in pickle_aliases
                    and node.attr in self.LOAD_ATTRS
                ):
                    yield ctx.finding(
                        self.code,
                        node,
                        f"{node.value.id}.{node.attr} outside "
                        "repro.utils.transport: unpickling executes code; "
                        "use the framed send_frame/recv_frame path",
                    )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is not None and name.split(".")[-1] == "load":
                    for keyword in node.keywords:
                        if (
                            keyword.arg == "allow_pickle"
                            and isinstance(keyword.value, ast.Constant)
                            and keyword.value.value is True
                        ):
                            yield ctx.finding(
                                self.code,
                                node,
                                "np.load(allow_pickle=True) deserializes "
                                "pickled objects outside the framed "
                                "transport; store plain arrays instead",
                            )


# --------------------------------------------------------------------- #
# REP005 — engine shared-state writes outside the owning lock
# --------------------------------------------------------------------- #

_LOCK_HELD_DOC_RE = re.compile(
    r"(?i)caller[s]?\s+(?:must\s+)?hold|lock\s+(?:is\s+)?held|while\s+holding",
)


class UnlockedSharedWriteRule(Rule):
    """Engine shared state is written only under the owning lock.

    The serving engine is explicitly concurrent: ``ingest()`` enqueues
    from caller threads, a daemon drains, ``classify`` races
    ``advance_snapshot`` — PR 4's answer was the serve lock, and every
    ``engine/`` class since follows the pattern.  The rule recovers the
    discipline structurally: any attribute assigned a
    ``threading.Lock/RLock/Condition`` in a class is a *lock attribute*;
    any ``self.x`` attribute ever written inside a ``with self.<lock>:``
    block is *shared state*; writing shared state outside a lock block
    (and outside ``__init__``, where the object is still private to its
    constructor) is a finding.

    Helper methods that run with the lock already held document it —
    a docstring matching "caller holds"/"lock held" exempts the method,
    which keeps the contract greppable instead of implicit.
    """

    code = "REP005"
    name = "unlocked-shared-write"
    summary = "engine shared-state attribute written outside its lock"

    SCOPE = "src/repro/engine/"

    def applies(self, path: str) -> bool:
        return path.startswith(self.SCOPE)

    @staticmethod
    def _is_lock_ctor(node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        name = dotted_name(node.func)
        return name is not None and name.split(".")[-1] in (
            "Lock",
            "RLock",
            "Condition",
            "Semaphore",
            "BoundedSemaphore",
        )

    @classmethod
    def _lock_attrs(cls, class_node: ast.ClassDef) -> set[str]:
        attrs: set[str] = set()
        for node in ast.walk(class_node):
            if isinstance(node, ast.Assign) and cls._is_lock_ctor(node.value):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        attrs.add(target.attr)
        return attrs

    @staticmethod
    def _self_attr_writes(stmt: ast.stmt) -> list[tuple[str, ast.AST]]:
        """(attr, node) pairs for ``self.x = ...`` / ``self.x += ...``."""
        writes: list[tuple[str, ast.AST]] = []
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        for target in targets:
            for node in ast.walk(target):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.ctx, ast.Store)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                ):
                    writes.append((node.attr, node))
        return writes

    def _walk_method(
        self,
        body: list[ast.stmt],
        lock_attrs: set[str],
        guarded: bool,
        sink: list[tuple[str, ast.AST, bool]],
    ) -> None:
        for stmt in body:
            for attr, node in self._self_attr_writes(stmt):
                sink.append((attr, node, guarded))
            if isinstance(stmt, ast.With):
                holds = guarded or any(
                    isinstance(item.context_expr, ast.Attribute)
                    and isinstance(item.context_expr.value, ast.Name)
                    and item.context_expr.value.id == "self"
                    and item.context_expr.attr in lock_attrs
                    for item in stmt.items
                )
                self._walk_method(stmt.body, lock_attrs, holds, sink)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Nested function: conservatively inherits the guard state.
                self._walk_method(stmt.body, lock_attrs, guarded, sink)
            else:
                for field_name in ("body", "orelse", "finalbody", "handlers"):
                    children = getattr(stmt, field_name, None)
                    if not children:
                        continue
                    if field_name == "handlers":
                        for handler in children:
                            self._walk_method(
                                handler.body, lock_attrs, guarded, sink
                            )
                    else:
                        self._walk_method(children, lock_attrs, guarded, sink)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for class_node in ast.walk(ctx.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            lock_attrs = self._lock_attrs(class_node)
            if not lock_attrs:
                continue

            # Pass 1: every write, tagged with its guard state per method.
            writes_by_method: dict[str, list[tuple[str, ast.AST, bool]]] = {}
            for method in class_node.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                sink: list[tuple[str, ast.AST, bool]] = []
                self._walk_method(method.body, lock_attrs, False, sink)
                writes_by_method[method.name] = sink

            shared = {
                attr
                for sink in writes_by_method.values()
                for attr, _, guarded in sink
                if guarded
            } - lock_attrs

            if not shared:
                continue

            # Pass 2: unguarded writes to shared attrs outside __init__
            # and outside documented lock-held helpers.
            for method in class_node.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if method.name == "__init__":
                    continue
                docstring = ast.get_docstring(method) or ""
                if _LOCK_HELD_DOC_RE.search(docstring):
                    continue
                for attr, node, guarded in writes_by_method[method.name]:
                    if guarded or attr not in shared:
                        continue
                    locks = ", ".join(f"self.{name}" for name in sorted(lock_attrs))
                    yield ctx.finding(
                        self.code,
                        node,
                        f"self.{attr} is shared engine state (written under "
                        f"{locks} elsewhere in {class_node.name}) but this "
                        "write is lockless; wrap it in the lock, or document "
                        "the helper with 'caller holds the lock' in its "
                        "docstring",
                    )


# --------------------------------------------------------------------- #
# REP006 — knob-string dispatch outside the central registries
# --------------------------------------------------------------------- #

#: The four knob namespaces, mirrored from the live registries.  A test
#: cross-checks these against repro.* so drift fails loudly.
KNOB_LITERALS = frozenset(
    {
        # utils/executor.BACKENDS
        "serial",
        "thread",
        "process",
        "socket",
        # graph/partition.PARTITIONERS
        "hash",
        "greedy",
        # core/kernels.KERNELS
        "numpy",
        "numba",
        # core/spmm.SPMM_ENGINES
        "scipy",
        "threads",
        # shared auto-resolution token
        "auto",
    }
)

#: A comparison only counts when the non-literal side *names* a knob —
#: this is what keeps ``x.format != "csr"`` or ``mode == "process"`` on
#: an unrelated variable out of scope.
KNOB_NAME_HINTS = ("backend", "partitioner", "kernel", "spmm")


class KnobLiteralDispatchRule(Rule):
    """Backend/partitioner/kernel/spmm string dispatch stays central.

    The registries (``utils/executor.py``, ``graph/partition.py``,
    ``core/kernels.py``, ``core/spmm.py``) own name validation and
    ``"auto"`` resolution; ``engine/config.py`` validates eagerly at
    construction.  Scattered ``if backend == "proces":`` elsewhere is
    how typos ship (string dispatch has no exhaustiveness check) and
    how ``"auto"`` gets resolved twice with different answers on
    heterogeneous fleets.  Dispatch that genuinely must live elsewhere
    (e.g. the engine choosing pool ownership per backend *after*
    config validation) carries an inline suppression whose reason says
    exactly that.
    """

    code = "REP006"
    name = "knob-literal-dispatch"
    summary = "knob string literal dispatched outside the central registries"

    EXEMPT = (
        "src/repro/utils/executor.py",
        "src/repro/graph/partition.py",
        "src/repro/core/kernels.py",
        "src/repro/core/spmm.py",
        "src/repro/engine/config.py",
    )

    def applies(self, path: str) -> bool:
        return path not in self.EXEMPT

    @staticmethod
    def _mentions_knob(node: ast.AST) -> bool:
        name = dotted_name(node)
        if name is None:
            return False
        lowered = name.lower()
        return any(hint in lowered for hint in KNOB_NAME_HINTS)

    @staticmethod
    def _knob_literals_in(node: ast.AST) -> list[str]:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return [node.value] if node.value in KNOB_LITERALS else []
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            literals: list[str] = []
            for element in node.elts:
                if not (
                    isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                ):
                    return []
                if element.value in KNOB_LITERALS:
                    literals.append(element.value)
            return literals
        return []

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not all(
                isinstance(op, (ast.Eq, ast.NotEq, ast.In, ast.NotIn))
                for op in node.ops
            ):
                continue
            sides = [node.left, *node.comparators]
            literal_values: list[str] = []
            knob_named = False
            for side in sides:
                values = self._knob_literals_in(side)
                if values:
                    literal_values.extend(values)
                elif self._mentions_knob(side):
                    knob_named = True
            if literal_values and knob_named:
                shown = "/".join(repr(v) for v in literal_values[:3])
                yield ctx.finding(
                    self.code,
                    node,
                    f"dispatch on knob literal {shown} outside the central "
                    "registries; validate/resolve via validate_backend, "
                    "validate_partitioner, resolve_kernel or "
                    "resolve_spmm_name (or keep the branch in the registry "
                    "module and suppress with the reason)",
                )


#: Registry order == documentation order.
ALL_RULES: tuple[Rule, ...] = (
    RawSparseProductRule(),
    StrayRngRule(),
    WallClockInCoreRule(),
    UnframedPickleRule(),
    UnlockedSharedWriteRule(),
    KnobLiteralDispatchRule(),
)
