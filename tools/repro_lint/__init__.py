"""repro-lint: AST-based invariant checker for this repository.

Eight PRs of scaling work accreted hard invariants — float64
bit-identity by IEEE-op-order, every hot-path sparse·dense product
routed through the :mod:`repro.core.spmm` engine layer, pickle only
behind the framed transport, engine shared state mutated only under
the serve lock, backend/partitioner/kernel/spmm names validated
centrally, and seeds flowing through :mod:`repro.utils.rng`.  Until
this package existed they were enforced only by convention plus
after-the-fact regression tests; a single careless call site (a raw
``X @ dense`` in a sweep, an unseeded ``np.random``, a stray
``pickle.loads``) silently broke them.

``repro-lint`` turns each invariant into a static rule over the AST:

=======  =======================  ==========================================
Code     Name                     Invariant
=======  =======================  ==========================================
REP001   raw-sparse-product       hot-path sparse·dense products go through
                                  ``SweepCache.dot`` / ``repro.core.spmm``
REP002   stray-rng                RNGs are constructed only via
                                  ``repro.utils.rng`` helpers
REP003   wall-clock-in-core       ``repro.core`` numerics never read the
                                  wall clock
REP004   unframed-pickle          unpickling happens only inside
                                  ``repro.utils.transport``
REP005   unlocked-shared-write    engine shared state is written only under
                                  the owning lock
REP006   knob-literal-dispatch    backend/partitioner/kernel/spmm string
                                  dispatch lives with the central registries
=======  =======================  ==========================================

Run it as ``python -m tools.repro_lint [paths] [--baseline FILE]
[--format text|json]``.  Findings can be suppressed inline with
``# repro-lint: disable=REPnnn -- reason`` (the reason is mandatory);
pre-existing, deliberate violations live in the checked-in baseline
file so CI fails only on *new* findings.  See CONTRIBUTING.md,
"Invariants & static analysis".

The package is dependency-free (stdlib ``ast`` + ``tokenize`` only) so
the CI job can run it before installing anything.
"""

from __future__ import annotations

from tools.repro_lint.core import Finding, LintError, ModuleContext, Rule, lint_paths
from tools.repro_lint.rules import ALL_RULES

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintError",
    "ModuleContext",
    "Rule",
    "lint_paths",
]
