"""Visitor framework: findings, suppressions, module contexts, the runner.

The shape mirrors a scaled-down flake8: each :class:`Rule` owns one
invariant, receives a parsed :class:`ModuleContext`, and yields
:class:`Finding` objects.  The runner applies inline suppressions and
hands the survivors to the baseline layer (:mod:`tools.repro_lint.baseline`).

Suppression grammar::

    # repro-lint: disable=REP001 -- reason the violation is deliberate
    # repro-lint: disable=REP001,REP006 -- one reason may cover several codes

An *inline* suppression (trailing comment) covers findings on its own
line.  A *standalone* comment-line suppression covers the next
statement: its scope runs from the directive down to the first
following line that carries code, so the reason may continue over
several comment lines.

The trailing ``-- reason`` is *mandatory*: a suppression without one
does not suppress anything and is itself reported as ``REP000`` — the
whole point of the checker is that every deviation from an invariant
carries its justification next to the code.
"""

from __future__ import annotations

import ast
import re
import tokenize
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path

#: Matches the suppression comment; group 1 = comma-separated codes,
#: group 2 = the reason (absent when the author forgot it).
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Z0-9,\s]+?)\s*(?:--\s*(\S.*?))?\s*$"
)

#: Rule codes look like REP001; REP000 is reserved for meta-findings
#: (malformed suppressions) and cannot be suppressed.
_CODE_RE = re.compile(r"^REP\d{3}$")


class LintError(Exception):
    """A file could not be read or parsed (reported, exit code 2)."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # repo-relative posix path, the baseline key
    line: int
    col: int
    message: str
    snippet: str  # stripped source line; makes baselines robust to line drift

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def baseline_key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.snippet)

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class Suppression:
    """A parsed ``# repro-lint: disable=...`` comment.

    ``first_line``/``last_line`` delimit the lines whose findings the
    suppression covers: just the comment's own line for an inline
    (trailing) suppression, or the span down to the next code line for
    a standalone comment-line suppression.
    """

    line: int
    codes: tuple[str, ...]
    reason: str | None
    first_line: int = 0
    last_line: int = 0
    used: bool = False


class ModuleContext:
    """A parsed module: source, AST, and its inline suppressions."""

    def __init__(self, display_path: str, source: str) -> None:
        self.path = display_path
        self.source = source
        self.lines = source.splitlines()
        try:
            self.tree = ast.parse(source, filename=display_path)
        except SyntaxError as exc:  # pragma: no cover - repo parses clean
            raise LintError(f"{display_path}: syntax error: {exc}") from exc
        self.suppressions = _parse_suppressions(display_path, source)

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule,
            path=self.path,
            line=line,
            col=col + 1,
            message=message,
            snippet=self.snippet(line),
        )


class Rule:
    """Base class: one invariant, one code, one ``check`` generator."""

    code: str = "REP000"
    name: str = "abstract"
    summary: str = ""

    def applies(self, path: str) -> bool:
        """Whether the rule scans ``path`` (repo-relative posix)."""
        return True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError


def _parse_suppressions(path: str, source: str) -> dict[int, Suppression]:
    """Map line number -> suppression, via real comment tokens.

    Tokenizing (rather than regexing raw lines) means a
    ``repro-lint:`` sequence inside a string literal can never be
    mistaken for a directive.
    """
    suppressions: dict[int, Suppression] = {}
    lines = iter(source.splitlines(keepends=True))
    try:
        tokens = list(tokenize.generate_tokens(lambda: next(lines, "")))
    except tokenize.TokenizeError as exc:  # pragma: no cover - parse guard
        raise LintError(f"{path}: tokenize error: {exc}") from exc
    source_lines = source.splitlines()
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        codes = tuple(
            code.strip() for code in match.group(1).split(",") if code.strip()
        )
        reason = match.group(2)
        line, col = token.start
        inline = bool(source_lines[line - 1][:col].strip())
        last_line = line
        if not inline:
            # Standalone comment: scope extends to the next code line,
            # skipping the rest of the comment block and blank lines.
            for offset in range(line, len(source_lines)):
                text = source_lines[offset].strip()
                if text and not text.startswith("#"):
                    last_line = offset + 1
                    break
        suppressions[line] = Suppression(
            line=line,
            codes=codes,
            reason=reason,
            first_line=line,
            last_line=last_line,
        )
    return suppressions


def _suppression_for(
    ctx: ModuleContext, finding: Finding
) -> Suppression | None:
    """The suppression whose scope covers ``finding``, if any."""
    for suppression in ctx.suppressions.values():
        if (
            suppression.first_line <= finding.line <= suppression.last_line
            and finding.rule in suppression.codes
        ):
            return suppression
    return None


def _meta_findings(ctx: ModuleContext) -> list[Finding]:
    """REP000 findings for malformed suppression comments."""
    findings: list[Finding] = []
    for suppression in ctx.suppressions.values():
        bad_codes = [c for c in suppression.codes if not _CODE_RE.match(c)]
        if not suppression.codes or bad_codes:
            findings.append(
                Finding(
                    rule="REP000",
                    path=ctx.path,
                    line=suppression.line,
                    col=1,
                    message=(
                        "malformed repro-lint suppression: expected "
                        "'# repro-lint: disable=REPnnn -- reason'"
                        + (f" (unknown codes: {', '.join(bad_codes)})" if bad_codes else "")
                    ),
                    snippet=ctx.snippet(suppression.line),
                )
            )
        elif not suppression.reason:
            findings.append(
                Finding(
                    rule="REP000",
                    path=ctx.path,
                    line=suppression.line,
                    col=1,
                    message=(
                        "suppression is missing its required reason: write "
                        "'# repro-lint: disable="
                        + ",".join(suppression.codes)
                        + " -- why this violation is deliberate'"
                    ),
                    snippet=ctx.snippet(suppression.line),
                )
            )
    return findings


def check_module(ctx: ModuleContext, rules: Sequence[Rule]) -> list[Finding]:
    """All findings for one module, suppressions applied."""
    findings = _meta_findings(ctx)
    for rule in rules:
        if not rule.applies(ctx.path):
            continue
        for finding in rule.check(ctx):
            suppression = _suppression_for(ctx, finding)
            if suppression is not None and suppression.reason:
                suppression.used = True
                continue
            findings.append(finding)
    return findings


def iter_python_files(paths: Iterable[Path], root: Path) -> Iterator[Path]:
    """Yield .py files under ``paths``, sorted, skipping caches and VCS dirs."""
    skip_parts = {"__pycache__", ".git", ".mypy_cache", ".ruff_cache"}
    seen: set[Path] = set()
    for path in paths:
        path = path if path.is_absolute() else root / path
        if path.is_file() and path.suffix == ".py":
            candidates: Iterable[Path] = [path]
        elif path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            raise LintError(f"no such file or directory: {path}")
        for candidate in candidates:
            if skip_parts & set(candidate.parts):
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def display_path(path: Path, root: Path) -> str:
    """Repo-relative posix path when possible — the stable baseline key."""
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_paths(
    paths: Iterable[Path], rules: Sequence[Rule], root: Path | None = None
) -> list[Finding]:
    """Lint every python file under ``paths`` with ``rules``."""
    root = root or Path.cwd()
    findings: list[Finding] = []
    for file_path in iter_python_files(paths, root):
        rel = display_path(file_path, root)
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(f"{rel}: {exc}") from exc
        ctx = ModuleContext(rel, source)
        findings.extend(check_module(ctx, rules))
    findings.sort(key=Finding.sort_key)
    return findings


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
