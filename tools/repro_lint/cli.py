"""Command line front end: ``python -m tools.repro_lint [paths] ...``.

Exit codes: 0 clean (all findings grandfathered), 1 new findings,
2 usage / IO / parse errors.  REP000 (malformed suppression) findings
are never baselined — a suppression without a reason fails the run no
matter what.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path

from tools.repro_lint.baseline import (
    load_baseline,
    split_new_findings,
    write_baseline,
)
from tools.repro_lint.core import Finding, LintError, lint_paths
from tools.repro_lint.rules import ALL_RULES

#: Scanned when no paths are given — the trees whose invariants the
#: rules encode.  tests/ is deliberately absent: tests construct RNGs,
#: compare knob strings and poke raw scipy products on purpose.
DEFAULT_PATHS = ("src", "tools", "benchmarks")

DEFAULT_BASELINE = Path("tools/repro_lint/baseline.json")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.repro_lint",
        description=(
            "AST-based invariant checker for this repo: determinism, "
            "concurrency and transport rules as enforced static analysis. "
            "See CONTRIBUTING.md 'Invariants & static analysis'."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline JSON of grandfathered findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding as new",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    return parser


def _print_rules() -> None:
    for rule in ALL_RULES:
        print(f"{rule.code}  {rule.name:<24} {rule.summary}")


def _emit_text(
    new: list[Finding], grandfathered: list[Finding], stale: int
) -> None:
    for finding in new:
        print(finding.render())
    parts = [f"{len(new)} new finding{'s' if len(new) != 1 else ''}"]
    if grandfathered:
        parts.append(f"{len(grandfathered)} grandfathered by baseline")
    if stale:
        parts.append(
            f"{stale} stale baseline entr{'ies' if stale != 1 else 'y'} "
            "(regenerate with --write-baseline)"
        )
    print("repro-lint: " + ", ".join(parts))


def _emit_json(
    new: list[Finding], grandfathered: list[Finding], stale: int
) -> None:
    print(
        json.dumps(
            {
                "new": [f.to_dict() for f in new],
                "grandfathered": [f.to_dict() for f in grandfathered],
                "stale_baseline_entries": stale,
            },
            indent=2,
        )
    )


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        _print_rules()
        return 0

    paths = args.paths or [Path(p) for p in DEFAULT_PATHS]
    root = Path.cwd()

    try:
        findings = lint_paths(paths, ALL_RULES, root=root)
    except LintError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2

    baseline_path = args.baseline or DEFAULT_BASELINE
    if not baseline_path.is_absolute():
        baseline_path = root / baseline_path

    if args.write_baseline:
        # REP000 never enters a baseline: fix the suppression instead.
        meta = [f for f in findings if f.rule == "REP000"]
        if meta:
            for finding in meta:
                print(finding.render(), file=sys.stderr)
            print(
                "repro-lint: refusing to write a baseline over malformed "
                "suppressions",
                file=sys.stderr,
            )
            return 2
        write_baseline(baseline_path, findings)
        print(
            f"repro-lint: wrote {len(findings)} finding"
            f"{'s' if len(findings) != 1 else ''} to {baseline_path}"
        )
        return 0

    baseline: Counter[tuple[str, str, str]] = Counter()
    if not args.no_baseline and baseline_path.exists():
        try:
            baseline = load_baseline(baseline_path)
        except LintError as exc:
            print(f"repro-lint: error: {exc}", file=sys.stderr)
            return 2

    new, grandfathered, stale = split_new_findings(findings, baseline)
    # Malformed suppressions can never be grandfathered.
    regressed = [f for f in grandfathered if f.rule == "REP000"]
    if regressed:
        new.extend(regressed)
        grandfathered = [f for f in grandfathered if f.rule != "REP000"]
        new.sort(key=Finding.sort_key)

    if args.format == "json":
        _emit_json(new, grandfathered, stale)
    else:
        _emit_text(new, grandfathered, stale)
    return 1 if new else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
