"""Baseline support: grandfather pre-existing findings, fail only on new.

The baseline is a checked-in JSON multiset of findings keyed by
``(rule, path, snippet)`` — the *stripped source line*, not the line
number, so unrelated edits above a grandfathered violation do not
invalidate the baseline.  Duplicate keys are counted: two identical
raw products in one file occupy two baseline slots, and adding a third
is a new finding.

Entries that no longer match anything are *stale*; they are reported
as a nudge to regenerate (``--write-baseline``) but never fail the
run — a fixed violation should not punish the fixer.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from tools.repro_lint.core import Finding, LintError

BASELINE_VERSION = 1


def load_baseline(path: Path) -> Counter[tuple[str, str, str]]:
    """The baseline file as a multiset of ``(rule, path, snippet)`` keys."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise LintError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise LintError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "findings" not in payload:
        raise LintError(f"baseline {path} must be an object with 'findings'")
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise LintError(
            f"baseline {path} has version {version!r}; this checker reads "
            f"version {BASELINE_VERSION} — regenerate with --write-baseline"
        )
    keys: Counter[tuple[str, str, str]] = Counter()
    for entry in payload["findings"]:
        try:
            keys[(entry["rule"], entry["path"], entry["snippet"])] += 1
        except (TypeError, KeyError) as exc:
            raise LintError(
                f"baseline {path} entry {entry!r} lacks rule/path/snippet"
            ) from exc
    return keys


def write_baseline(path: Path, findings: list[Finding]) -> None:
    """Serialize ``findings`` as the new baseline (sorted, line kept as FYI)."""
    payload = {
        "version": BASELINE_VERSION,
        "note": (
            "Grandfathered repro-lint findings. Matching is by "
            "(rule, path, snippet) so line numbers are informational. "
            "Regenerate with: python -m tools.repro_lint src tools "
            "benchmarks --write-baseline"
        ),
        "findings": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "snippet": f.snippet,
            }
            for f in sorted(findings, key=Finding.sort_key)
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def split_new_findings(
    findings: list[Finding], baseline: Counter[tuple[str, str, str]]
) -> tuple[list[Finding], list[Finding], int]:
    """Partition into (new, grandfathered) and count stale baseline slots."""
    remaining = Counter(baseline)
    new: list[Finding] = []
    grandfathered: list[Finding] = []
    for finding in findings:
        key = finding.baseline_key()
        if remaining[key] > 0:
            remaining[key] -= 1
            grandfathered.append(finding)
        else:
            new.append(finding)
    stale = sum(remaining.values())
    return new, grandfathered, stale
