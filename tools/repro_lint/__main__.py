"""``python -m tools.repro_lint`` entry point."""

from tools.repro_lint.cli import main

raise SystemExit(main())
